/**
 * @file
 * TypedIndex posting-list tests: pending/flushed lookup equivalence,
 * the sealed-page directory, CRC-framed page round-trips through the
 * shared SsdModel, serialize/deserialize persistence, and corruption
 * surfacing as integrity_lost (DESIGN.md §15).
 */
#include "typed/typed_index.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/ssd_model.h"
#include "typed/predicate.h"

namespace mithril::typed {
namespace {

Predicate
mustParse(std::string_view word)
{
    Predicate p;
    Status st = parsePredicate(word, &p);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return p;
}

/** Lines 0..n-1: every 3rd mentions 10.0.0.1, every 5th 10.0.0.2,
 *  every 7th the hex id. */
void
fillIndex(TypedIndex *index, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i) {
        std::string line = "line " + std::to_string(i);
        if (i % 3 == 0) {
            line += " src=10.0.0.1,";
        }
        if (i % 5 == 0) {
            line += " peer 10.0.0.2";
        }
        if (i % 7 == 0) {
            line += " [feedc0defeedbeef]";
        }
        index->addLine(line, i);
    }
}

std::vector<uint64_t>
expectedLines(uint64_t n, uint64_t step)
{
    std::vector<uint64_t> lines;
    for (uint64_t i = 0; i < n; i += step) {
        lines.push_back(i);
    }
    return lines;
}

TEST(TypedIndexTest, PendingLookupBeforeFlush)
{
    storage::SsdModel ssd;
    TypedIndex index(&ssd);
    fillIndex(&index, 100);
    LookupResult r = index.lookup(mustParse("ip:10.0.0.1"));
    EXPECT_EQ(r.lines, expectedLines(100, 3));
    EXPECT_EQ(r.pages_read, 0u);  // nothing flushed yet
    EXPECT_FALSE(r.integrity_lost);
}

TEST(TypedIndexTest, FlushedLookupReadsPostingPages)
{
    storage::SsdModel ssd;
    TypedIndex index(&ssd);
    fillIndex(&index, 1000);
    index.flush();
    LookupResult r = index.lookup(mustParse("ip:10.0.0.1"));
    EXPECT_EQ(r.lines, expectedLines(1000, 3));
    EXPECT_GT(r.pages_read, 0u);
    EXPECT_GT(r.bytes_read, 0u);
    EXPECT_FALSE(r.integrity_lost);

    // Postings added after a flush land in the pending tail and merge
    // with the flushed pages.
    index.addLine("late src=10.0.0.1,", 1002);
    LookupResult merged = index.lookup(mustParse("ip:10.0.0.1"));
    std::vector<uint64_t> expected = expectedLines(1000, 3);
    expected.push_back(1002);
    EXPECT_EQ(merged.lines, expected);
}

TEST(TypedIndexTest, RangePredicateSpansKeys)
{
    storage::SsdModel ssd;
    TypedIndex index(&ssd);
    fillIndex(&index, 105);
    index.flush();
    // The /30 block {10.0.0.0..3} covers both planted addresses.
    LookupResult r = index.lookup(mustParse("ip:10.0.0.0/30"));
    std::vector<uint64_t> expected;
    for (uint64_t i = 0; i < 105; ++i) {
        if (i % 3 == 0 || i % 5 == 0) {
            expected.push_back(i);
        }
    }
    EXPECT_EQ(r.lines, expected);  // union, ascending, deduped
}

TEST(TypedIndexTest, HexIdLookup)
{
    storage::SsdModel ssd;
    TypedIndex index(&ssd);
    fillIndex(&index, 100);
    index.flush();
    LookupResult r = index.lookup(mustParse("id:feedc0defeedbeef"));
    EXPECT_EQ(r.lines, expectedLines(100, 7));
}

TEST(TypedIndexTest, PageDirectoryMapsLinesToPages)
{
    storage::SsdModel ssd;
    TypedIndex index(&ssd);
    // Three sealed pages of 40 lines each.
    storage::PageId p0 = ssd.allocate();
    storage::PageId p1 = ssd.allocate();
    storage::PageId p2 = ssd.allocate();
    index.notePage(p0, 0, 40);
    index.notePage(p1, 40, 40);
    index.notePage(p2, 80, 40);

    std::vector<uint64_t> lines = {3, 17, 39};  // all in page 0
    EXPECT_EQ(index.pagesForLines(lines),
              std::vector<storage::PageId>{p0});
    lines = {39, 40, 100};  // pages 0, 1, 2
    EXPECT_EQ(index.pagesForLines(lines),
              (std::vector<storage::PageId>{p0, p1, p2}));
    lines = {41, 42, 43};  // duplicates collapse
    EXPECT_EQ(index.pagesForLines(lines),
              std::vector<storage::PageId>{p1});
}

TEST(TypedIndexTest, SerializeDeserializeRoundTrip)
{
    storage::SsdModel ssd;
    TypedIndex index(&ssd);
    fillIndex(&index, 500);
    storage::PageId data_page = ssd.allocate();
    index.notePage(data_page, 0, 500);
    index.flush();
    LookupResult before = index.lookup(mustParse("ip:10.0.0.1"));

    std::vector<uint8_t> blob;
    index.serialize(&blob);

    // A fresh directory over the same device must answer identically.
    TypedIndex restored(&ssd);
    ASSERT_TRUE(restored.deserialize(blob).isOk());
    EXPECT_EQ(restored.keyCount(), index.keyCount());
    LookupResult after = restored.lookup(mustParse("ip:10.0.0.1"));
    EXPECT_EQ(after.lines, before.lines);
    EXPECT_EQ(restored.pageDirectory().size(), 1u);
    EXPECT_EQ(restored.pageDirectory()[0].page, data_page);

    // A corrupt blob reports kCorruptData, never crashes.
    std::vector<uint8_t> bad(blob.begin(),
                             blob.begin() + blob.size() / 2);
    TypedIndex victim(&ssd);
    EXPECT_EQ(victim.deserialize(bad).code(),
              StatusCode::kCorruptData);
}

TEST(TypedIndexTest, CorruptPostingPageReportsIntegrityLost)
{
    storage::SsdModel ssd;
    TypedIndex index(&ssd);
    fillIndex(&index, 2000);
    index.flush();
    LookupResult clean = index.lookup(mustParse("ip:10.0.0.1"));
    ASSERT_FALSE(clean.integrity_lost);
    ASSERT_GT(clean.pages_read, 0u);

    // Smash every device page the posting lists could live on; the
    // damage is persistent (no fault plan), so retries cannot help and
    // the lookup must degrade loudly, not return silently short lists.
    for (storage::PageId id = 0; id < ssd.store().pageCount(); ++id) {
        auto page = ssd.store().mutablePage(id);
        for (size_t i = 0; i < 32; ++i) {
            page[i] ^= 0x5a;
        }
    }
    LookupResult damaged = index.lookup(mustParse("ip:10.0.0.1"));
    EXPECT_TRUE(damaged.integrity_lost);
}

} // namespace
} // namespace mithril::typed
