/**
 * @file
 * Typed-predicate grammar and range-semantics tests (DESIGN.md §15),
 * including the CIDR containment oracle: the encoded [lo, hi] range
 * must agree with direct bitmask arithmetic on every sampled address.
 */
#include "typed/predicate.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mithril::typed {
namespace {

TEST(PredicateTest, TypedWordDetection)
{
    EXPECT_TRUE(isTypedWord("ip:10.0.0.1"));
    EXPECT_TRUE(isTypedWord("id:deadbeef01"));
    EXPECT_TRUE(isTypedWord("mac:aa:bb:cc:dd:ee:ff"));
    EXPECT_TRUE(isTypedWord("time:[0,1]"));
    EXPECT_FALSE(isTypedWord("error"));
    EXPECT_FALSE(isTypedWord("shipped:yes"));
}

TEST(PredicateTest, ExactIp4IsDegenerateRange)
{
    Predicate p;
    ASSERT_TRUE(parsePredicate("ip:10.1.2.3", &p).isOk());
    EXPECT_EQ(p.kind, TypedKind::kIp4);
    EXPECT_EQ(p.lo, p.hi);
    EXPECT_TRUE(p.matchesKey(ip4Key({10, 1, 2, 3})));
    EXPECT_FALSE(p.matchesKey(ip4Key({10, 1, 2, 4})));
    // A same-bytes key of another kind never matches.
    EXPECT_FALSE(p.matchesKey(timestampKey(0x0a010203)));
}

TEST(PredicateTest, CidrContainmentOracle)
{
    Predicate p;
    ASSERT_TRUE(parsePredicate("ip:10.1.128.0/18", &p).isOk());
    const uint32_t net = (10u << 24) | (1u << 16) | (128u << 8);
    const uint32_t mask = 0xFFFFFFFFu << (32 - 18);
    auto oracle = [&](uint32_t addr) { return (addr & mask) == net; };
    auto key = [](uint32_t addr) {
        return ip4Key({static_cast<uint8_t>(addr >> 24),
                       static_cast<uint8_t>(addr >> 16),
                       static_cast<uint8_t>(addr >> 8),
                       static_cast<uint8_t>(addr)});
    };
    // The exact block edges.
    EXPECT_TRUE(p.matchesKey(key(net)));
    EXPECT_TRUE(p.matchesKey(key(net | ~mask)));
    EXPECT_FALSE(p.matchesKey(key(net - 1)));
    EXPECT_FALSE(p.matchesKey(key((net | ~mask) + 1)));
    // Random sample across the whole address space.
    Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        uint32_t addr = static_cast<uint32_t>(rng.next());
        EXPECT_EQ(p.matchesKey(key(addr)), oracle(addr)) << addr;
    }
    // Dense sample around the block boundaries.
    for (uint32_t d = 0; d < 64; ++d) {
        EXPECT_EQ(p.matchesKey(key(net + d)), oracle(net + d));
        EXPECT_EQ(p.matchesKey(key(net - 32 + d)),
                  oracle(net - 32 + d));
        EXPECT_EQ(p.matchesKey(key((net | ~mask) - 32 + d)),
                  oracle((net | ~mask) - 32 + d));
    }
}

TEST(PredicateTest, CidrEdgePrefixes)
{
    Predicate p;
    // /32: exactly one address.
    ASSERT_TRUE(parsePredicate("ip:10.0.0.7/32", &p).isOk());
    EXPECT_TRUE(p.matchesKey(ip4Key({10, 0, 0, 7})));
    EXPECT_FALSE(p.matchesKey(ip4Key({10, 0, 0, 6})));
    EXPECT_FALSE(p.matchesKey(ip4Key({10, 0, 0, 8})));
    // /0: every address.
    ASSERT_TRUE(parsePredicate("ip:0.0.0.0/0", &p).isOk());
    EXPECT_TRUE(p.matchesKey(ip4Key({0, 0, 0, 0})));
    EXPECT_TRUE(p.matchesKey(ip4Key({255, 255, 255, 255})));
}

TEST(PredicateTest, Ip6Cidr)
{
    Predicate p;
    ASSERT_TRUE(parsePredicate("ip:2001:db8::/32", &p).isOk());
    EXPECT_EQ(p.kind, TypedKind::kIp6);
    std::array<uint8_t, 16> inside{};
    ASSERT_TRUE(parseIp6("2001:db8:ffff::1", &inside));
    std::array<uint8_t, 16> outside{};
    ASSERT_TRUE(parseIp6("2001:db9::1", &outside));
    EXPECT_TRUE(p.matchesKey(ip6Key(inside)));
    EXPECT_FALSE(p.matchesKey(ip6Key(outside)));
}

TEST(PredicateTest, TimeWindow)
{
    Predicate p;
    ASSERT_TRUE(parsePredicate("time:[100,200]", &p).isOk());
    EXPECT_EQ(p.kind, TypedKind::kTimestamp);
    EXPECT_FALSE(p.matchesKey(timestampKey(99)));
    EXPECT_TRUE(p.matchesKey(timestampKey(100)));   // inclusive lo
    EXPECT_TRUE(p.matchesKey(timestampKey(200)));   // inclusive hi
    EXPECT_FALSE(p.matchesKey(timestampKey(201)));

    // RFC 3339 bounds parse to the same window as their epochs.
    Predicate rfc;
    ASSERT_TRUE(parsePredicate(
        "time:[2026-08-09T00:00:00Z,2026-08-09T23:59:59Z]", &rfc)
            .isOk());
    uint64_t day =
        static_cast<uint64_t>(daysFromCivil(2026, 8, 9)) * 86400;
    EXPECT_TRUE(rfc.matchesKey(timestampKey(day)));
    EXPECT_TRUE(rfc.matchesKey(timestampKey(day + 86399)));
    EXPECT_FALSE(rfc.matchesKey(timestampKey(day - 1)));
    EXPECT_FALSE(rfc.matchesKey(timestampKey(day + 86400)));
}

TEST(PredicateTest, MalformedValuesRejected)
{
    Predicate p;
    EXPECT_FALSE(parsePredicate("ip:10.0.0.256", &p).isOk());
    EXPECT_FALSE(parsePredicate("ip:10.0.0.0/33", &p).isOk());
    EXPECT_FALSE(parsePredicate("ip:", &p).isOk());
    EXPECT_FALSE(parsePredicate("id:short", &p).isOk());
    EXPECT_FALSE(parsePredicate("time:[200,100]", &p).isOk());  // t0>t1
    EXPECT_FALSE(parsePredicate("time:[1,2", &p).isOk());
    EXPECT_FALSE(parsePredicate("mac:aa:bb", &p).isOk());
}

TEST(PredicateTest, LineMatchesUsesExtractors)
{
    Predicate p;
    ASSERT_TRUE(parsePredicate("ip:10.1.2.0/24", &p).isOk());
    EXPECT_TRUE(lineMatches("fw: DROP src=10.1.2.3, proto=tcp", p));
    EXPECT_FALSE(lineMatches("fw: DROP src=10.1.3.3, proto=tcp", p));
    EXPECT_FALSE(lineMatches("nothing typed here", p));
}

} // namespace
} // namespace mithril::typed
