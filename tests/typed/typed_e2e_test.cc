/**
 * @file
 * End-to-end oracle for the typed query tier (DESIGN.md §15): on the
 * seeded incident scenario, the typed-index path must return results
 * byte-identical to a host-side full-scan oracle (the extractor
 * registry run over the raw text) under three mounts — clean, with a
 * deterministic fault plan attached, and after a power-cut crash plus
 * journal-replay recovery.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/mithrilog.h"
#include "fault/fault_plan.h"
#include "loggen/incident.h"
#include "typed/predicate.h"

namespace mithril::core {
namespace {

typed::Predicate
mustParse(std::string_view word)
{
    typed::Predicate p;
    Status st = typed::parsePredicate(word, &p);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return p;
}

/** Host-side oracle: the extractor registry over the raw text — line
 *  numbers (0-based, ascending) whose bytes satisfy @p pred. */
std::vector<uint64_t>
oracleLines(const std::string &text, const typed::Predicate &pred)
{
    std::vector<uint64_t> lines;
    uint64_t line_no = 0;
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            end = text.size();
        }
        std::string_view line(text.data() + start, end - start);
        if (typed::lineMatches(line, pred)) {
            lines.push_back(line_no);
        }
        ++line_no;
        start = end + 1;
    }
    return lines;
}

/** The queries the oracle cross-checks on every mount. */
const char *const kPredicates[] = {
    "ip:192.0.2.77",     // exact attacker address
    "ip:192.0.2.64/26",  // subnet: attacker + decoy
    "id:f00dfeed8badc0de",
};

class TypedE2eTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        loggen::IncidentSpec spec;
        spec.background_bytes = 256 << 10;  // keep the suite quick
        text_ = loggen::generateIncident(spec, &truth_);
        path_ = ::testing::TempDir() + "typed_e2e_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                ".img";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    static MithriLogConfig
    typedConfig()
    {
        MithriLogConfig cfg;
        cfg.accel.keep_lines = true;
        return cfg;
    }

    /** Runs every oracle predicate against @p system and asserts the
     *  result set is byte-identical to the host-side scan of
     *  @p corpus (which must be what the store holds). */
    void
    expectOracleEqual(MithriLog *system, const std::string &corpus,
                      const char *mount)
    {
        for (const char *word : kPredicates) {
            typed::Predicate pred = mustParse(word);
            std::vector<uint64_t> expected =
                oracleLines(corpus, pred);
            QueryResult r;
            Status st = system->run(word, &r);
            ASSERT_TRUE(st.isOk())
                << mount << " " << word << ": " << st.toString();
            EXPECT_EQ(r.line_numbers, expected)
                << mount << " " << word
                << ": typed result diverges from the host oracle";
            EXPECT_EQ(r.matched_lines, expected.size());
        }
    }

    std::string text_;
    loggen::IncidentGroundTruth truth_;
    std::string path_;
};

TEST_F(TypedE2eTest, CleanMountMatchesOracle)
{
    MithriLog system(typedConfig());
    ASSERT_TRUE(system.ingestText(text_).isOk());
    ASSERT_TRUE(system.flush().isOk());
    expectOracleEqual(&system, text_, "clean");

    // The scenario's ground truth is itself oracle-consistent.
    typed::Predicate exact = mustParse(kPredicates[0]);
    EXPECT_EQ(oracleLines(text_, exact), truth_.attacker_lines);
}

TEST_F(TypedE2eTest, FaultPlanMountMatchesOracle)
{
    MithriLog system(typedConfig());
    ASSERT_TRUE(system.ingestText(text_).isOk());
    ASSERT_TRUE(system.flush().isOk());

    // The fault-matrix corruption plan: silent bit flips and garbled
    // blocks on the read path. Retries (or degradation to the exact
    // typed scan) must keep results byte-identical — never short.
    fault::FaultPlanConfig fc;
    fc.seed = 3;
    fc.bit_error_rate = 1e-6;
    fc.block_garble_rate = 0.002;
    fault::FaultPlan plan(fc);
    system.ssd().attachFaultPlan(&plan);
    expectOracleEqual(&system, text_, "faulted");
}

TEST_F(TypedE2eTest, PostCrashRecoveryMatchesOracle)
{
    // Power-cut the device mid-ingest, dump the NAND, recover, and
    // check the typed tier over the surviving durable prefix.
    {
        MithriLog system(typedConfig());
        fault::FaultPlanConfig fc;
        fc.power_cut_after_writes = 12;
        fault::FaultPlan plan(fc);
        system.ssd().attachFaultPlan(&plan);
        Status st = system.ingestText(text_);
        ASSERT_EQ(st.code(), StatusCode::kUnavailable)
            << "cut ordinal never reached; corpus too small?";
        ASSERT_TRUE(system.saveDeviceImage(path_).isOk());
    }
    MithriLog mounted(typedConfig());
    ASSERT_TRUE(mounted.recover(path_).isOk());
    ASSERT_GT(mounted.lineCount(), 0u);

    // Recovery keeps the longest clean prefix of the corpus: the
    // oracle is the same host-side scan, truncated to the lines that
    // survived.
    std::string prefix;
    uint64_t keep = mounted.lineCount();
    size_t start = 0;
    while (keep > 0 && start < text_.size()) {
        size_t end = text_.find('\n', start);
        prefix.append(text_, start, end - start + 1);
        start = end + 1;
        --keep;
    }
    expectOracleEqual(&mounted, prefix, "recovered");

    // And the recovered typed path still agrees with the recovered
    // degraded baseline (use_typed_index off), the in-system dual of
    // the host oracle.
    MithriLogConfig scan_cfg = typedConfig();
    scan_cfg.use_typed_index = false;
    MithriLog baseline(scan_cfg);
    ASSERT_TRUE(baseline.recover(path_).isOk());
    for (const char *word : kPredicates) {
        QueryResult rt, rs;
        ASSERT_TRUE(mounted.run(word, &rt).isOk());
        ASSERT_TRUE(baseline.run(word, &rs).isOk());
        EXPECT_EQ(rt.line_numbers, rs.line_numbers) << word;
        ASSERT_EQ(rt.lines.size(), rs.lines.size()) << word;
        for (size_t i = 0; i < rt.lines.size(); ++i) {
            EXPECT_EQ(rt.lines[i].text, rs.lines[i].text)
                << word << " line " << i;
        }
    }
}

} // namespace
} // namespace mithril::core
