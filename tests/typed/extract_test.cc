/**
 * @file
 * Extractor-registry tests (DESIGN.md §15), centered on the boundary
 * forms real logs glue values into: `src=10.1.2.3,`, `[deadbeef01]`,
 * `host:10.0.0.1`. These are exact-byte regression tests — each input
 * line pins the exact key sequence extractLine() must emit, so any
 * ladder or trimming change that shifts extraction shows up here
 * before it silently splits the ingest-time and query-time views.
 */
#include "typed/extract.h"

#include <gtest/gtest.h>

#include <vector>

#include "typed/typed_key.h"

namespace mithril::typed {
namespace {

std::vector<TypedKey>
keysOf(std::string_view line)
{
    std::vector<TypedKey> keys;
    extractLine(line, [&](const TypedKey &k) { keys.push_back(k); });
    return keys;
}

TEST(ExtractTest, PlainTokens)
{
    auto keys = keysOf("connection from 10.1.2.3 established");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], ip4Key({10, 1, 2, 3}));

    keys = keysOf("session deadbeef01 opened");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], hexIdKey("deadbeef01"));
}

TEST(ExtractTest, KeyValueWithTrailingComma)
{
    // The satellite form: `src=10.1.2.3,` — '=' ladder rung plus
    // trailing-punctuation trim, in one token.
    auto keys = keysOf("fw: DROP src=10.1.2.3, dst=10.0.0.5 proto=tcp");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], ip4Key({10, 1, 2, 3}));
    EXPECT_EQ(keys[1], ip4Key({10, 0, 0, 5}));
}

TEST(ExtractTest, BracketedHexId)
{
    // The satellite form: `[deadbeef01]` — surrounding punctuation.
    auto keys = keysOf("auth: session [f00dfeed8badc0de] opened");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], hexIdKey("f00dfeed8badc0de"));
}

TEST(ExtractTest, ColonPrefixedValue)
{
    auto keys = keysOf("peer host:10.9.8.7 ready");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], ip4Key({10, 9, 8, 7}));
}

TEST(ExtractTest, SentencePunctuation)
{
    // Trailing sentence dot after a dotted quad: strip exactly one.
    auto keys = keysOf("unreachable peer 10.1.2.3.");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], ip4Key({10, 1, 2, 3}));

    keys = keysOf("was it 10.1.2.3?");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], ip4Key({10, 1, 2, 3}));

    keys = keysOf("(10.1.2.3)");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], ip4Key({10, 1, 2, 3}));
}

TEST(ExtractTest, MacBeforeIp6Disambiguation)
{
    // A MAC is also lexable as IPv6 hex groups; the registry order
    // must classify the 17-byte two-nibble form as a MAC.
    auto keys = keysOf("link aa:bb:cc:dd:ee:ff up");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], macKey({0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}));

    keys = keysOf("addr 2001:db8::1 reachable");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].kind, TypedKind::kIp6);
}

TEST(ExtractTest, SyslogHeaderSpansTokens)
{
    uint64_t epoch = 0;
    ASSERT_TRUE(parseSyslogTime("Jun", "3", "22:02:50", &epoch));
    auto keys = keysOf("- 1117836170 sn42 Jun 3 22:02:50 src@sn42 up");
    // The three-token header is found at line level; the epoch-like
    // number is a pure digit run (not a hex id, not an address).
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], timestampKey(epoch));
}

TEST(ExtractTest, OneKeyPerToken)
{
    // First ladder hit wins: the raw token parses as an RFC 3339
    // timestamp; the ladder must not also emit for later rungs.
    auto keys = keysOf("at 2026-08-09T12:34:56Z exactly");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].kind, TypedKind::kTimestamp);
}

TEST(ExtractTest, NonValuesEmitNothing)
{
    EXPECT_TRUE(keysOf("").empty());
    EXPECT_TRUE(keysOf("plain words only here").empty());
    EXPECT_TRUE(keysOf("version 1.2.3 released").empty());  // 3 octets
    EXPECT_TRUE(keysOf("error code 404 at line 12345678").empty());
}

TEST(ExtractTest, LineContainsKey)
{
    TypedKey key = ip4Key({10, 1, 2, 3});
    EXPECT_TRUE(lineContainsKey("src=10.1.2.3, ok", key));
    EXPECT_FALSE(lineContainsKey("src=10.1.2.4, ok", key));
}

} // namespace
} // namespace mithril::typed
