#include "compress/lzrw1.h"

#include <gtest/gtest.h>

namespace mithril::compress {
namespace {

std::string
roundTrip(const Lzrw1 &codec, const std::string &text)
{
    Bytes compressed = codec.compress(asBytes(text));
    Bytes out;
    Status st = codec.decompress(compressed, &out);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return std::string(out.begin(), out.end());
}

TEST(Lzrw1Test, EmptyInput)
{
    Lzrw1 codec;
    EXPECT_EQ(roundTrip(codec, ""), "");
}

TEST(Lzrw1Test, ShortLiteralOnly)
{
    Lzrw1 codec;
    EXPECT_EQ(roundTrip(codec, "ab"), "ab");
}

TEST(Lzrw1Test, RepetitionCompresses)
{
    Lzrw1 codec;
    std::string text;
    for (int i = 0; i < 500; ++i) {
        text += "the same log line again ";
    }
    Bytes compressed = codec.compress(asBytes(text));
    EXPECT_LT(compressed.size(), text.size() / 3);
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lzrw1Test, OverlappingCopy)
{
    // "aaaa..." exercises self-overlapping match copies.
    Lzrw1 codec;
    std::string text(1000, 'a');
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lzrw1Test, MatchesCapAt18Bytes)
{
    // A long run must be emitted as multiple <=18-byte copies and
    // still reassemble exactly.
    Lzrw1 codec;
    std::string text = "prefix ";
    text += std::string(100, 'x');
    text += " suffix";
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lzrw1Test, OffsetsBeyond4095AreNotUsed)
{
    // Pattern repeats at distance > 4095: LZRW1 cannot reference it,
    // but output must still be correct.
    Lzrw1 codec;
    std::string unique_block;
    for (int i = 0; i < 5000; ++i) {
        unique_block += static_cast<char>('a' + (i * 7 + i / 26) % 26);
    }
    std::string text = unique_block + unique_block;
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lzrw1Test, BinaryBytesSurvive)
{
    Lzrw1 codec;
    std::string text;
    for (int i = 0; i < 1024; ++i) {
        text += static_cast<char>(i % 256);
    }
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lzrw1Test, TruncatedFrameRejected)
{
    Lzrw1 codec;
    Bytes out;
    Bytes tiny{0, 1, 2};
    EXPECT_EQ(codec.decompress(tiny, &out).code(),
              StatusCode::kCorruptData);
}

TEST(Lzrw1Test, CorruptOffsetRejected)
{
    Lzrw1 codec;
    std::string text = "abcabcabcabcabcabcabcabc";
    Bytes compressed = codec.compress(asBytes(text));
    // Force the control word to claim a copy where none fits.
    compressed[8] = 0xff;
    compressed[9] = 0xff;
    Bytes out;
    Status st = codec.decompress(compressed, &out);
    // Either rejected or (rarely) decodes to wrong-size output; the
    // decoder must not crash and must not silently return success with
    // the original text.
    if (st.isOk()) {
        EXPECT_NE(std::string(out.begin(), out.end()), text);
    }
}

} // namespace
} // namespace mithril::compress
