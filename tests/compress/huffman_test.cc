#include "compress/huffman.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mithril::compress {
namespace {

TEST(HuffmanLengthsTest, EmptyAlphabet)
{
    auto lengths = huffmanCodeLengths({0, 0, 0});
    EXPECT_EQ(lengths, (std::vector<uint8_t>{0, 0, 0}));
}

TEST(HuffmanLengthsTest, SingleSymbolGetsOneBit)
{
    auto lengths = huffmanCodeLengths({0, 5, 0});
    EXPECT_EQ(lengths[1], 1);
    EXPECT_EQ(lengths[0], 0);
}

TEST(HuffmanLengthsTest, SkewedFrequenciesGetShorterCodes)
{
    auto lengths = huffmanCodeLengths({1000, 10, 10, 10});
    EXPECT_LT(lengths[0], lengths[1]);
}

TEST(HuffmanLengthsTest, KraftInequalityHolds)
{
    Rng rng(11);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<uint64_t> freqs(64);
        for (auto &f : freqs) {
            f = rng.below(1000);
        }
        auto lengths = huffmanCodeLengths(freqs);
        uint64_t kraft = 0;
        for (size_t s = 0; s < lengths.size(); ++s) {
            ASSERT_LE(lengths[s], kMaxCodeBits);
            if (lengths[s] > 0) {
                kraft += 1ull << (kMaxCodeBits - lengths[s]);
            }
            if (freqs[s] > 0) {
                EXPECT_GT(lengths[s], 0) << "symbol " << s;
            }
        }
        EXPECT_LE(kraft, 1ull << kMaxCodeBits);
    }
}

TEST(HuffmanLengthsTest, LengthLimitingKicksIn)
{
    // Fibonacci-like frequencies force deep optimal trees; the limiter
    // must cap them at kMaxCodeBits.
    std::vector<uint64_t> freqs;
    uint64_t a = 1, b = 1;
    for (int i = 0; i < 40; ++i) {
        freqs.push_back(a);
        uint64_t next = a + b;
        a = b;
        b = next;
    }
    auto lengths = huffmanCodeLengths(freqs);
    for (uint8_t l : lengths) {
        EXPECT_LE(l, kMaxCodeBits);
        EXPECT_GT(l, 0);
    }
}

TEST(HuffmanRoundTripTest, EncodeDecodeRandomStream)
{
    Rng rng(22);
    for (int iter = 0; iter < 10; ++iter) {
        std::vector<uint64_t> freqs(32, 0);
        std::vector<uint32_t> symbols;
        for (int i = 0; i < 3000; ++i) {
            // Skew the distribution so codes differ in length.
            uint32_t s = static_cast<uint32_t>(rng.skewedBelow(32, 3.0));
            symbols.push_back(s);
            ++freqs[s];
        }
        auto lengths = huffmanCodeLengths(freqs);
        auto codes = canonicalCodes(lengths);

        BitWriter writer;
        for (uint32_t s : symbols) {
            ASSERT_GT(lengths[s], 0);
            writer.write(codes[s], lengths[s]);
        }
        auto bytes = writer.take();

        HuffmanDecoder decoder;
        ASSERT_TRUE(decoder.init(lengths).isOk());
        BitReader reader(bytes.data(), bytes.size());
        for (uint32_t expected : symbols) {
            uint32_t got;
            ASSERT_TRUE(decoder.decode(&reader, &got).isOk());
            ASSERT_EQ(got, expected);
        }
    }
}

TEST(HuffmanDecoderTest, RejectsOversubscribedLengths)
{
    // Three codes of length 1 oversubscribe the code space.
    HuffmanDecoder decoder;
    EXPECT_FALSE(decoder.init({1, 1, 1}).isOk());
}

TEST(HuffmanDecoderTest, RejectsOutOfRangeLength)
{
    HuffmanDecoder decoder;
    EXPECT_FALSE(decoder.init({16}).isOk());
}

TEST(HuffmanDecoderTest, TruncatedStreamFails)
{
    auto lengths = huffmanCodeLengths({10, 10, 10, 10});
    HuffmanDecoder decoder;
    ASSERT_TRUE(decoder.init(lengths).isOk());
    BitReader reader(nullptr, 0);
    uint32_t sym;
    EXPECT_FALSE(decoder.decode(&reader, &sym).isOk());
}

} // namespace
} // namespace mithril::compress
