#include "compress/lzah.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/page.h"

namespace mithril::compress {
namespace {

std::string
decodeAll(const std::vector<Bytes> &pages, bool padded)
{
    Bytes out;
    for (const Bytes &page : pages) {
        Status st = lzahDecodePage(page, padded, &out);
        EXPECT_TRUE(st.isOk()) << st.toString();
    }
    return std::string(out.begin(), out.end());
}

TEST(LzahHashTest, DeterministicAndInRange)
{
    Word w{};
    w[0] = 'R';
    w[1] = 'A';
    w[2] = 'S';
    EXPECT_EQ(lzahHash(w), lzahHash(w));
    EXPECT_LT(lzahHash(w), kLzahTableEntries);
}

TEST(LzahPageEncoderTest, SingleLineRoundTrip)
{
    LzahPageEncoder enc;
    ASSERT_EQ(enc.addLine("hello log world"), AddLineResult::kAppended);
    enc.flush();
    ASSERT_EQ(enc.pages().size(), 1u);
    EXPECT_EQ(enc.pages()[0].size(), storage::kPageSize);
    EXPECT_EQ(decodeAll(enc.pages(), false), "hello log world\n");
}

TEST(LzahPageEncoderTest, EmptyLineRoundTrip)
{
    LzahPageEncoder enc;
    ASSERT_EQ(enc.addLine(""), AddLineResult::kAppended);
    ASSERT_EQ(enc.addLine("x"), AddLineResult::kAppended);
    enc.flush();
    EXPECT_EQ(decodeAll(enc.pages(), false), "\nx\n");
}

TEST(LzahPageEncoderTest, ExactWordMultipleLine)
{
    LzahPageEncoder enc;
    std::string line(32, 'a');  // exactly two words + terminator word
    ASSERT_EQ(enc.addLine(line), AddLineResult::kAppended);
    enc.flush();
    EXPECT_EQ(decodeAll(enc.pages(), false), line + "\n");
}

TEST(LzahPageEncoderTest, RepeatedLinesCompress)
{
    LzahPageEncoder enc;
    std::string line =
        "- 117 2005.06.03 R24-M0-N0 RAS KERNEL INFO cache parity";
    for (int i = 0; i < 40; ++i) {
        ASSERT_NE(enc.addLine(line), AddLineResult::kRejected);
    }
    enc.flush();
    // 40 identical ~57-byte lines (~2.3 KB raw) must fit one page with
    // plenty of headroom, since repeats cost 2 bytes per word.
    EXPECT_EQ(enc.pages().size(), 1u);
    std::string expect;
    for (int i = 0; i < 40; ++i) {
        expect += line;
        expect += '\n';
    }
    EXPECT_EQ(decodeAll(enc.pages(), false), expect);
}

TEST(LzahPageEncoderTest, RejectsOverlongLine)
{
    LzahPageEncoder enc;
    std::string giant(LzahPageEncoder::kMaxLineBytes + 1, 'x');
    EXPECT_EQ(enc.addLine(giant), AddLineResult::kRejected);
}

TEST(LzahPageEncoderTest, MaxLineAlwaysFitsFreshPage)
{
    LzahPageEncoder enc;
    // Fill the open page with ~2 KB of unique (incompressible) lines,
    // then push an incompressible max-length line: the page must seal
    // and the line must land whole in a fresh page.
    Rng rng(1);
    std::string expect;
    auto random_line = [&](size_t len) {
        std::string line;
        for (size_t i = 0; i < len; ++i) {
            line += static_cast<char>('A' + rng.below(26));
        }
        return line;
    };
    for (int i = 0; i < 60; ++i) {
        std::string starter = random_line(30);
        ASSERT_EQ(enc.addLine(starter), AddLineResult::kAppended) << i;
        expect += starter + "\n";
    }
    std::string line = random_line(LzahPageEncoder::kMaxLineBytes);
    EXPECT_EQ(enc.addLine(line), AddLineResult::kSealedAndAppended);
    enc.flush();
    ASSERT_EQ(enc.pages().size(), 2u);
    EXPECT_EQ(decodeAll(enc.pages(), false), expect + line + "\n");
}

TEST(LzahPageEncoderTest, PagesDecodeIndependently)
{
    LzahPageEncoder enc;
    std::string a = "alpha beta gamma delta epsilon zeta eta theta";
    for (int i = 0; i < 600; ++i) {
        ASSERT_NE(enc.addLine(a + std::to_string(i)),
                  AddLineResult::kRejected);
    }
    enc.flush();
    ASSERT_GT(enc.pages().size(), 1u);
    // Decode only the second page: must succeed standalone.
    Bytes out;
    Status st = lzahDecodePage(enc.pages()[1], false, &out);
    EXPECT_TRUE(st.isOk()) << st.toString();
    EXPECT_FALSE(out.empty());
    // Its first byte starts a fresh line (the previous page ended one).
    std::string text(out.begin(), out.end());
    EXPECT_EQ(text.substr(0, 5), "alpha");
}

TEST(LzahPaddedModeTest, WordsAreLineAligned)
{
    LzahPageEncoder enc;
    ASSERT_EQ(enc.addLine("ab"), AddLineResult::kAppended);
    ASSERT_EQ(enc.addLine("cd"), AddLineResult::kAppended);
    enc.flush();
    Bytes out;
    ASSERT_TRUE(lzahDecodePage(enc.pages()[0], true, &out).isOk());
    ASSERT_EQ(out.size(), 2 * kLzahWord);
    EXPECT_EQ(out[0], 'a');
    EXPECT_EQ(out[2], '\n');
    EXPECT_EQ(out[3], 0);  // zero padding after the newline
    EXPECT_EQ(out[16], 'c');
}

TEST(LzahDecompressorModelTest, OneCyclePerWord)
{
    LzahPageEncoder enc;
    for (int i = 0; i < 100; ++i) {
        ASSERT_NE(enc.addLine("some log line with several tokens " +
                              std::to_string(i)),
                  AddLineResult::kRejected);
    }
    enc.flush();
    LzahDecompressorModel model;
    Bytes out;
    for (const Bytes &page : enc.pages()) {
        ASSERT_TRUE(model.decodePage(page, &out).isOk());
    }
    EXPECT_EQ(model.cycles() * kLzahWord, out.size());
    EXPECT_EQ(model.bytesOut(), out.size());
}

TEST(LzahCodecTest, WholeBufferRoundTripSimple)
{
    Lzah codec;
    std::string text = "one two three\nfour five six\nseven\n";
    Bytes compressed = codec.compress(asBytes(text));
    Bytes out;
    ASSERT_TRUE(codec.decompress(compressed, &out).isOk());
    EXPECT_EQ(std::string(out.begin(), out.end()), text);
}

TEST(LzahCodecTest, NoTrailingNewline)
{
    Lzah codec;
    std::string text = "line one\nline two";  // no final terminator
    Bytes compressed = codec.compress(asBytes(text));
    Bytes out;
    ASSERT_TRUE(codec.decompress(compressed, &out).isOk());
    EXPECT_EQ(std::string(out.begin(), out.end()), text);
}

TEST(LzahCodecTest, EmptyInput)
{
    Lzah codec;
    Bytes compressed = codec.compress({});
    Bytes out;
    ASSERT_TRUE(codec.decompress(compressed, &out).isOk());
    EXPECT_TRUE(out.empty());
}

TEST(LzahCodecTest, VeryLongLineSplitsAndRejoins)
{
    Lzah codec;
    Rng rng(3);
    std::string line;
    for (int i = 0; i < 9000; ++i) {
        line += static_cast<char>('a' + rng.below(26));
    }
    std::string text = "short\n" + line + "\ntail\n";
    Bytes compressed = codec.compress(asBytes(text));
    Bytes out;
    ASSERT_TRUE(codec.decompress(compressed, &out).isOk());
    EXPECT_EQ(std::string(out.begin(), out.end()), text);
}

TEST(LzahCodecTest, CompressesRepetitiveLogs)
{
    Lzah codec;
    std::string text;
    for (int i = 0; i < 2000; ++i) {
        text += "Jun 3 15:42:50 node-7 kernel: eth0 link up 1000Mbps\n";
    }
    Bytes compressed = codec.compress(asBytes(text));
    double ratio = compressionRatio(text.size(), compressed.size());
    // Identical lines approach the format's ~8x bound.
    EXPECT_GT(ratio, 5.0);
    Bytes out;
    ASSERT_TRUE(codec.decompress(compressed, &out).isOk());
    EXPECT_EQ(out.size(), text.size());
}

/**
 * Property sweep: the page encoder round-trips random line streams
 * across length regimes — empty-heavy, short, word-boundary-aligned,
 * long, and mixed — for several seeds.
 */
class LzahLineSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(LzahLineSweep, PageEncoderRoundTrips)
{
    auto [regime, seed] = GetParam();
    Rng rng(static_cast<uint64_t>(seed) * 7919 + regime);

    auto line_length = [&]() -> size_t {
        switch (regime) {
          case 0:  // empty-heavy
            return rng.chance(0.5) ? 0 : rng.below(4);
          case 1:  // short tokensy lines
            return 1 + rng.below(24);
          case 2:  // around word-size multiples
            return 16 * (1 + rng.below(4)) + rng.below(3) - 1;
          case 3:  // long lines
            return 200 + rng.below(1200);
          default:  // mixed
            return rng.below(400);
        }
    };

    LzahPageEncoder enc;
    std::string expect;
    for (int i = 0; i < 400; ++i) {
        std::string line;
        size_t len = line_length();
        for (size_t b = 0; b < len; ++b) {
            // Printable, no newline/NUL (LZAH's input contract).
            line += static_cast<char>(' ' + rng.below(95));
        }
        ASSERT_NE(enc.addLine(line), AddLineResult::kRejected);
        expect += line;
        expect += '\n';
    }
    enc.flush();
    EXPECT_EQ(decodeAll(enc.pages(), false), expect);
    // Padded form is consistent word-wise with the unpadded form.
    Bytes padded;
    uint64_t words = 0;
    for (const Bytes &page : enc.pages()) {
        ASSERT_TRUE(lzahDecodePage(page, true, &padded, &words).isOk());
    }
    EXPECT_EQ(padded.size(), words * kLzahWord);
    EXPECT_GE(padded.size(), expect.size());
}

INSTANTIATE_TEST_SUITE_P(
    RegimesAndSeeds, LzahLineSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1, 2, 3)));

TEST(LzahCodecTest, RejectsCorruptMagic)
{
    Lzah codec;
    std::string text = "a line of text\n";
    Bytes compressed = codec.compress(asBytes(text));
    // Flip a byte inside the first page's header magic region.
    ASSERT_GT(compressed.size(), 32u);
    compressed[13 + 4 + 8] ^= 0xff;
    Bytes out;
    EXPECT_FALSE(codec.decompress(compressed, &out).isOk());
}

TEST(LzahCodecTest, RejectsTruncatedFrame)
{
    Lzah codec;
    Bytes out;
    Bytes tiny{1, 2, 3};
    EXPECT_EQ(codec.decompress(tiny, &out).code(),
              StatusCode::kCorruptData);
}

} // namespace
} // namespace mithril::compress
