/**
 * @file
 * Cross-codec property tests: every compressor must round-trip every
 * input class, and the Table 5 ratio ordering must hold on log-like
 * data (gzip-class > LZ4-class > LZRW1-class on repetitive text).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/compressor.h"
#include "loggen/log_generator.h"

namespace mithril::compress {
namespace {

/** Input classes for the round-trip property sweep. */
enum class InputKind {
    kEmpty,
    kSingleLine,
    kRepetitiveLog,
    kSyntheticHpc,
    kRandomAscii,
    kManyEmptyLines,
};

std::string
makeInput(InputKind kind)
{
    Rng rng(77);
    switch (kind) {
      case InputKind::kEmpty:
        return "";
      case InputKind::kSingleLine:
        return "single line no terminator";
      case InputKind::kRepetitiveLog: {
        std::string text;
        for (int i = 0; i < 800; ++i) {
            text += "- 117 2005.06.03 R24-M0 RAS KERNEL INFO parity ok\n";
        }
        return text;
      }
      case InputKind::kSyntheticHpc: {
        loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
        return gen.generate(200 * 1024);
      }
      case InputKind::kRandomAscii: {
        std::string text;
        for (int i = 0; i < 60000; ++i) {
            char c = static_cast<char>(' ' + rng.below(95));
            text += (c == '\n') ? ' ' : c;
            if (rng.chance(0.01)) {
                text += '\n';
            }
        }
        return text;
      }
      case InputKind::kManyEmptyLines:
        return std::string(500, '\n');
    }
    return "";
}

class RoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, InputKind>>
{
};

TEST_P(RoundTripTest, CompressDecompressIsIdentity)
{
    auto [codec_idx, kind] = GetParam();
    auto codecs = allCompressors();
    ASSERT_LT(static_cast<size_t>(codec_idx), codecs.size());
    const Compressor &codec = *codecs[codec_idx];

    std::string input = makeInput(kind);
    Bytes compressed = codec.compress(asBytes(input));
    Bytes output;
    Status st = codec.decompress(compressed, &output);
    ASSERT_TRUE(st.isOk()) << codec.name() << ": " << st.toString();
    ASSERT_EQ(output.size(), input.size()) << codec.name();
    EXPECT_TRUE(std::equal(input.begin(), input.end(), output.begin()))
        << codec.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllInputs, RoundTripTest,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values(InputKind::kEmpty, InputKind::kSingleLine,
                          InputKind::kRepetitiveLog,
                          InputKind::kSyntheticHpc,
                          InputKind::kRandomAscii,
                          InputKind::kManyEmptyLines)));

TEST(RatioOrderingTest, Table5OrderingOnLogData)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[3]);  // Thunderbird
    std::string text = gen.generate(1 << 20);

    auto codecs = allCompressors();
    double lzah = 0, lzrw = 0, lz4 = 0, gzip = 0;
    for (const auto &codec : codecs) {
        Bytes c = codec->compress(asBytes(text));
        double r = compressionRatio(text.size(), c.size());
        if (codec->name() == "LZAH") lzah = r;
        if (codec->name() == "LZRW1") lzrw = r;
        if (codec->name() == "LZ4") lz4 = r;
        if (codec->name() == "Gzip") gzip = r;
    }
    // Table 5's ordering on repetitive datasets: gzip > LZ4 > the
    // byte/word-granular fast codecs; everything compresses.
    EXPECT_GT(gzip, lz4);
    EXPECT_GT(lz4, lzrw);
    EXPECT_GT(lzah, 1.5);
    EXPECT_GT(lzrw, 1.5);
}

} // namespace
} // namespace mithril::compress
