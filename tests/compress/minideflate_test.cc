#include "compress/minideflate.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mithril::compress {
namespace {

std::string
roundTrip(const MiniDeflate &codec, const std::string &text)
{
    Bytes compressed = codec.compress(asBytes(text));
    Bytes out;
    Status st = codec.decompress(compressed, &out);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return std::string(out.begin(), out.end());
}

TEST(MiniDeflateTest, EmptyInput)
{
    MiniDeflate codec;
    EXPECT_EQ(roundTrip(codec, ""), "");
}

TEST(MiniDeflateTest, SingleByte)
{
    MiniDeflate codec;
    EXPECT_EQ(roundTrip(codec, "q"), "q");
}

TEST(MiniDeflateTest, PlainText)
{
    MiniDeflate codec;
    std::string text = "the quick brown fox jumps over the lazy dog";
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(MiniDeflateTest, HighlyRepetitiveBeatsLz4ClassRatios)
{
    MiniDeflate codec;
    std::string text;
    for (int i = 0; i < 2000; ++i) {
        text += "Jun 3 15:42:50 node-7 kernel: eth0 link up 1000Mbps\n";
    }
    Bytes compressed = codec.compress(asBytes(text));
    double ratio = compressionRatio(text.size(), compressed.size());
    // Entropy coding should push identical-line logs far beyond 20x.
    EXPECT_GT(ratio, 20.0);
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(MiniDeflateTest, IncompressibleRandomSurvives)
{
    MiniDeflate codec;
    Rng rng(5);
    std::string text;
    for (int i = 0; i < 50000; ++i) {
        text += static_cast<char>(rng.below(256));
    }
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(MiniDeflateTest, MultiBlockInput)
{
    // More than kBlockSymbols items forces several Huffman blocks.
    MiniDeflate codec;
    Rng rng(6);
    std::string text;
    for (int i = 0; i < 90000; ++i) {
        text += static_cast<char>('a' + rng.below(26));
    }
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(MiniDeflateTest, MaxLengthMatches)
{
    MiniDeflate codec;
    std::string text(100000, 'a');  // runs of 258-byte matches
    Bytes compressed = codec.compress(asBytes(text));
    EXPECT_LT(compressed.size(), 2000u);
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(MiniDeflateTest, TruncatedFrameRejected)
{
    MiniDeflate codec;
    Bytes out;
    Bytes tiny{1, 2};
    EXPECT_EQ(codec.decompress(tiny, &out).code(),
              StatusCode::kCorruptData);
}

TEST(MiniDeflateTest, CorruptBodyRejectedOrWrong)
{
    MiniDeflate codec;
    std::string text = "abcdefgh abcdefgh abcdefgh";
    Bytes compressed = codec.compress(asBytes(text));
    compressed[compressed.size() / 2] ^= 0x55;
    Bytes out;
    Status st = codec.decompress(compressed, &out);
    if (st.isOk()) {
        EXPECT_NE(std::string(out.begin(), out.end()), text);
    }
}

} // namespace
} // namespace mithril::compress
