#include "compress/lz4like.h"

#include <gtest/gtest.h>

#include "common/bits.h"

namespace mithril::compress {
namespace {

std::string
roundTrip(const Lz4Like &codec, const std::string &text)
{
    Bytes compressed = codec.compress(asBytes(text));
    Bytes out;
    Status st = codec.decompress(compressed, &out);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return std::string(out.begin(), out.end());
}

TEST(Lz4LikeTest, EmptyInput)
{
    Lz4Like codec;
    EXPECT_EQ(roundTrip(codec, ""), "");
}

TEST(Lz4LikeTest, ShortLiterals)
{
    Lz4Like codec;
    EXPECT_EQ(roundTrip(codec, "abc"), "abc");
}

TEST(Lz4LikeTest, LongLiteralRunUsesExtensionBytes)
{
    // > 15 literals forces the 255-saturating extension path.
    Lz4Like codec;
    std::string text;
    for (int i = 0; i < 400; ++i) {
        text += static_cast<char>('a' + (i * 11 + i / 13) % 26);
    }
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lz4LikeTest, LongMatchUsesExtensionBytes)
{
    Lz4Like codec;
    std::string text = "seed";
    text += std::string(5000, 'z');  // match length >> 19
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lz4LikeTest, RepetitionCompressesWell)
{
    Lz4Like codec;
    std::string text;
    for (int i = 0; i < 1000; ++i) {
        text += "Jun 3 15:42:50 node kernel: link up\n";
    }
    Bytes compressed = codec.compress(asBytes(text));
    EXPECT_LT(compressed.size(), text.size() / 8);
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lz4LikeTest, SelfOverlappingMatch)
{
    Lz4Like codec;
    std::string text = "abab";
    text += std::string(100, 'c');
    text = text + text + text;
    EXPECT_EQ(roundTrip(codec, text), text);
}

TEST(Lz4LikeTest, TruncatedFrameRejected)
{
    Lz4Like codec;
    Bytes out;
    Bytes tiny{9};
    EXPECT_EQ(codec.decompress(tiny, &out).code(),
              StatusCode::kCorruptData);
}

TEST(Lz4LikeTest, BadOffsetRejected)
{
    Lz4Like codec;
    std::string text = "xyxyxyxyxyxyxyxyxyxyxyxyxyxyxyxy";
    Bytes compressed = codec.compress(asBytes(text));
    Bytes out;
    // Zero out what should be a match offset; offset 0 is invalid.
    bool corrupted = false;
    for (size_t i = 9; i + 1 < compressed.size(); ++i) {
        if (compressed[i] != 0 || compressed[i + 1] != 0) {
            continue;
        }
        corrupted = true;
        break;
    }
    (void)corrupted;
    // Direct construction: token with match, offset 0.
    Bytes bad;
    putLe<uint64_t>(bad, 8);
    bad.push_back(0x10);  // 1 literal, match len 4
    bad.push_back('a');
    putLe<uint16_t>(bad, 0);  // offset 0: invalid
    EXPECT_FALSE(codec.decompress(bad, &out).isOk());
}

} // namespace
} // namespace mithril::compress
