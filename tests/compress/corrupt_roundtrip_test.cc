/**
 * @file
 * Mutation-corpus robustness tests for every codec: seeded single-byte
 * flips, truncations, and extensions of valid compressed frames must
 * always surface a typed error (kDataLoss for CRC-detected damage,
 * kCorruptData for structural damage) — never succeed with wrong
 * bytes, never read out of bounds (the suite doubles as the asan+ubsan
 * corpus), never crash.
 *
 * All mutation positions come from common/rng.h at fixed seeds, so a
 * failure reproduces exactly.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/compressor.h"
#include "compress/huffman.h"
#include "compress/lzah.h"

namespace mithril::compress {
namespace {

/** Log-like sample with repeats (matches) and noise (literals). */
std::string
sampleText()
{
    std::string text;
    Rng rng(99);
    for (int i = 0; i < 400; ++i) {
        text += "host" + std::to_string(rng.below(8)) +
                " daemon event code=" + std::to_string(rng.below(1000)) +
                (i % 3 == 0 ? " retry scheduled\n" : " completed\n");
    }
    return text;
}

/** Decompress must fail with a typed error and leave no partial junk
 *  interpretation; asserts the code is one of the two damage codes. */
void
expectTypedFailure(const Compressor &codec, ByteView frame,
                   const char *what)
{
    Bytes out;
    Status st = codec.decompress(frame, &out);
    ASSERT_FALSE(st.isOk()) << codec.name() << ": " << what
                            << " decoded successfully";
    EXPECT_TRUE(st.code() == StatusCode::kDataLoss ||
                st.code() == StatusCode::kCorruptData)
        << codec.name() << ": " << what << ": " << st.toString();
}

TEST(CorruptRoundtripTest, SingleByteFlipsAreAlwaysDetected)
{
    std::string text = sampleText();
    for (const auto &codec : allCompressors()) {
        Bytes frame = codec->compress(asBytes(text));
        ASSERT_GT(frame.size(), 8u);
        Rng rng(4242);
        for (int trial = 0; trial < 64; ++trial) {
            Bytes mutant = frame;
            size_t pos = rng.below(mutant.size());
            mutant[pos] ^= static_cast<uint8_t>(1 + rng.below(255));
            // The whole-frame CRC-32 trailer detects every burst of up
            // to 32 bits, which covers any single-byte flip.
            expectTypedFailure(*codec, mutant, "byte-flip mutant");
        }
    }
}

TEST(CorruptRoundtripTest, TruncationsAreAlwaysDetected)
{
    std::string text = sampleText();
    for (const auto &codec : allCompressors()) {
        Bytes frame = codec->compress(asBytes(text));
        Rng rng(777);
        for (int trial = 0; trial < 32; ++trial) {
            size_t keep = rng.below(frame.size());
            expectTypedFailure(
                *codec, ByteView(frame.data(), keep), "truncated frame");
        }
        expectTypedFailure(*codec, ByteView(frame.data(), 0),
                           "empty frame");
    }
}

TEST(CorruptRoundtripTest, AppendedGarbageIsDetected)
{
    std::string text = sampleText();
    for (const auto &codec : allCompressors()) {
        Bytes frame = codec->compress(asBytes(text));
        Rng rng(31337);
        Bytes extended = frame;
        for (int i = 0; i < 16; ++i) {
            extended.push_back(static_cast<uint8_t>(rng.below(256)));
        }
        expectTypedFailure(*codec, extended, "extended frame");
    }
}

TEST(CorruptRoundtripTest, IntactFramesStillRoundTrip)
{
    // Sanity for the suite itself: the pristine frame decodes.
    std::string text = sampleText();
    for (const auto &codec : allCompressors()) {
        Bytes frame = codec->compress(asBytes(text));
        Bytes out;
        ASSERT_TRUE(codec->decompress(frame, &out).isOk())
            << codec->name();
        EXPECT_EQ(std::string(out.begin(), out.end()), text)
            << codec->name();
    }
}

TEST(CorruptRoundtripTest, LzahPageMutationsAreAlwaysDetected)
{
    // The page CRC covers bytes 16.. and the header fields are
    // individually validated, so a flip anywhere in a sealed 4 KB page
    // must be caught by lzahVerifyPage/lzahDecodePage.
    LzahPageEncoder enc;
    Rng text_rng(5);
    for (int i = 0; i < 200; ++i) {
        std::string line = "unit " + std::to_string(text_rng.below(50)) +
                           " event " + std::to_string(i) + " nominal";
        ASSERT_NE(enc.addLine(line), AddLineResult::kRejected);
    }
    enc.flush();
    ASSERT_FALSE(enc.pages().empty());
    const Bytes &page = enc.pages().front();

    Rng rng(2025);
    for (int trial = 0; trial < 128; ++trial) {
        Bytes mutant = page;
        size_t pos = rng.below(mutant.size());
        mutant[pos] ^= static_cast<uint8_t>(1 + rng.below(255));
        Status verify = lzahVerifyPage(mutant);
        ASSERT_FALSE(verify.isOk()) << "flip at " << pos;
        Bytes out;
        Status decode = lzahDecodePage(mutant, /*padded=*/true, &out);
        EXPECT_EQ(decode.code(), verify.code()) << "flip at " << pos;
        EXPECT_TRUE(out.empty()) << "flip at " << pos;
    }
}

TEST(CorruptRoundtripTest, LzahPageSliversAreRejected)
{
    LzahPageEncoder enc;
    for (int i = 0; i < 64; ++i) {
        ASSERT_NE(enc.addLine("line number " + std::to_string(i)),
                  AddLineResult::kRejected);
    }
    enc.flush();
    ASSERT_FALSE(enc.pages().empty());
    const Bytes &page = enc.pages().front();
    for (size_t keep : {0u, 1u, 15u, 16u, 17u, 48u, 100u, 1000u}) {
        Bytes out;
        Status st = lzahDecodePage(ByteView(page.data(), keep),
                                   /*padded=*/true, &out);
        EXPECT_FALSE(st.isOk()) << "sliver of " << keep << " bytes";
        EXPECT_TRUE(out.empty());
    }
}

TEST(CorruptRoundtripTest, HuffmanDecoderRejectsMalformedLengthTables)
{
    // Degenerate or random code-length tables must fail init or decode
    // without UB; these byte patterns appear when deflate block headers
    // are corrupted past the frame CRC (multi-block splice attacks).
    Rng rng(606);
    for (int trial = 0; trial < 64; ++trial) {
        std::vector<uint8_t> lengths(286);
        for (auto &l : lengths) {
            l = static_cast<uint8_t>(rng.below(16));
        }
        HuffmanDecoder dec;
        Status st = dec.init(lengths);
        if (!st.isOk()) {
            continue;  // rejected: fine
        }
        // A decoder that initialized must still fail cleanly on a
        // bit stream of garbage.
        std::vector<uint8_t> noise(64);
        for (auto &b : noise) {
            b = static_cast<uint8_t>(rng.below(256));
        }
        BitReader reader(noise.data(), noise.size());
        for (int i = 0; i < 128; ++i) {
            uint32_t symbol;
            if (!dec.decode(&reader, &symbol).isOk()) {
                break;
            }
            ASSERT_LT(symbol, lengths.size());
        }
    }
}

} // namespace
} // namespace mithril::compress
