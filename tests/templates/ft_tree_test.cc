#include "templates/ft_tree.h"

#include <gtest/gtest.h>

#include "loggen/log_generator.h"
#include "query/matcher.h"

namespace mithril::templates {
namespace {

/** Small corpus shaped like Figure 7: token A most frequent, then B,
 *  C, D, E. */
std::string
figure7Corpus()
{
    std::string text;
    // Global frequency order must be A > B > C > D ~ E as in Figure 7:
    // A = 150, B = 80, C = 70 (40 + 30), D = E = 30.
    for (int i = 0; i < 80; ++i) {
        text += "A B v" + std::to_string(i) + "\n";   // template 1
    }
    for (int i = 0; i < 40; ++i) {
        text += "A C w" + std::to_string(i) + "\n";   // template 2
    }
    for (int i = 0; i < 30; ++i) {
        text += "A C D E u" + std::to_string(i) + "\n";  // template 3
    }
    return text;
}

FtTreeConfig
smallConfig()
{
    FtTreeConfig cfg;
    cfg.token_min_count = 20;
    cfg.token_frequency_ratio = 0.0;
    cfg.template_min_support = 20;
    return cfg;
}

TEST(FtTreeTest, FrequencyThresholdDropsVariables)
{
    FtTree tree = FtTree::build(figure7Corpus(), smallConfig());
    EXPECT_GT(tree.tokenFrequency("A"), 0u);
    EXPECT_GT(tree.tokenFrequency("E"), 0u);
    EXPECT_EQ(tree.tokenFrequency("v1"), 0u);  // variable value
}

TEST(FtTreeTest, ExtractsFigure7Templates)
{
    FtTree tree = FtTree::build(figure7Corpus(), smallConfig());
    auto templates = tree.extractTemplates();
    ASSERT_EQ(templates.size(), 3u);

    // Templates sorted by DFS over token order; find by content.
    bool found_ab = false, found_ac = false, found_acde = false;
    for (const auto &tpl : templates) {
        if (tpl.tokens == std::vector<std::string>{"A", "B"}) {
            found_ab = true;
            EXPECT_EQ(tpl.support, 80u);
            // C is B's lower-frequency sibling: no negation needed.
            EXPECT_TRUE(tpl.negations.empty());
        }
        if (tpl.tokens == std::vector<std::string>{"A", "C"}) {
            found_ac = true;
            // B is a higher-frequency sibling of C: must be negated.
            ASSERT_EQ(tpl.negations.size(), 1u);
            EXPECT_EQ(tpl.negations[0], "B");
        }
        if (tpl.tokens ==
            std::vector<std::string>{"A", "C", "D", "E"}) {
            found_acde = true;
            EXPECT_EQ(tpl.negations, std::vector<std::string>{"B"});
        }
    }
    EXPECT_TRUE(found_ab);
    EXPECT_TRUE(found_ac);
    EXPECT_TRUE(found_acde);
}

TEST(FtTreeTest, ClassifyMapsLinesToTemplates)
{
    FtTree tree = FtTree::build(figure7Corpus(), smallConfig());
    auto templates = tree.extractTemplates();

    size_t idx = tree.classify("A B v999");
    ASSERT_NE(idx, SIZE_MAX);
    EXPECT_EQ(templates[idx].tokens,
              (std::vector<std::string>{"A", "B"}));

    idx = tree.classify("A C D E u7");
    ASSERT_NE(idx, SIZE_MAX);
    EXPECT_EQ(templates[idx].tokens.size(), 4u);

    EXPECT_EQ(tree.classify("Z Q unknown"), SIZE_MAX);
}

TEST(FtTreeTest, TemplateToQueryMatchesItsOwnLines)
{
    // Section 4.3's soundness property: the query built from a
    // template accepts every line the template classified.
    std::string corpus = figure7Corpus();
    FtTree tree = FtTree::build(corpus, smallConfig());
    auto templates = tree.extractTemplates();

    for (const auto &tpl : templates) {
        query::Query q = templateToQuery(tpl);
        ASSERT_TRUE(q.validate().isOk());
        query::SoftwareMatcher m(q);
        EXPECT_GT(m.filterLines(corpus).size(), 0u);
    }

    // Template (A & C & !B) must reject A-B lines and accept A-C ones.
    for (const auto &tpl : templates) {
        if (tpl.tokens == std::vector<std::string>{"A", "C"}) {
            query::SoftwareMatcher m(templateToQuery(tpl));
            EXPECT_TRUE(m.matches("A C w1"));
            EXPECT_FALSE(m.matches("A B v1"));
            EXPECT_TRUE(m.matches("A C D E u1"));  // superset retrieval
        }
    }
}

TEST(FtTreeTest, TemplatesToQueryJoinsWithUnion)
{
    FtTree tree = FtTree::build(figure7Corpus(), smallConfig());
    auto templates = tree.extractTemplates();
    query::Query joined = templatesToQuery(
        std::span(templates.data(), 2));
    EXPECT_EQ(joined.sets().size(), 2u);
    EXPECT_TRUE(joined.validate().isOk());
}

TEST(FtTreeTest, MaxDepthTruncatesSignatures)
{
    FtTreeConfig cfg = smallConfig();
    cfg.max_depth = 2;
    FtTree tree = FtTree::build(figure7Corpus(), cfg);
    for (const auto &tpl : tree.extractTemplates()) {
        EXPECT_LE(tpl.tokens.size(), 2u);
    }
}

TEST(FtTreeTest, ExtractsTemplateLibraryFromSyntheticDataset)
{
    // Table 1 reproduction path: extraction on a synthetic dataset
    // recovers a library within the right order of magnitude.
    const auto &spec = loggen::hpc4Datasets()[0];  // BGL2-like, 93
    loggen::LogGenerator gen(spec);
    std::string text = gen.generate(2 << 20);

    FtTreeConfig cfg;
    cfg.template_min_support = 24;
    FtTree tree = FtTree::build(text, cfg);
    auto templates = tree.extractTemplates();
    EXPECT_GT(templates.size(), 20u);
    EXPECT_LT(templates.size(), 600u);
}

TEST(FtTreeTest, EmptyCorpusYieldsNoTemplates)
{
    FtTree tree = FtTree::build("", FtTreeConfig{});
    EXPECT_TRUE(tree.extractTemplates().empty());
    EXPECT_EQ(tree.classify("anything"), SIZE_MAX);
}

} // namespace
} // namespace mithril::templates
