#include "templates/prefix_tree.h"

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "compress/lzah.h"

namespace mithril::templates {
namespace {

std::string
positionalCorpus()
{
    std::string text;
    // Two templates distinguished only by position: "up" appears at
    // column 2 in template 1 and at column 1 in template 2.
    for (int i = 0; i < 50; ++i) {
        text += "eth0 link up " + std::to_string(i) + "\n";
    }
    for (int i = 0; i < 50; ++i) {
        text += "node up link " + std::to_string(i) + "\n";
    }
    return text;
}

PrefixTreeConfig
smallConfig()
{
    PrefixTreeConfig cfg;
    cfg.token_min_count = 10;
    cfg.token_frequency_ratio = 0.0;
    cfg.template_min_support = 10;
    return cfg;
}

TEST(PrefixTreeTest, ExtractsPositionalTemplates)
{
    PrefixTree tree = PrefixTree::build(positionalCorpus(), smallConfig());
    const auto &templates = tree.extractTemplates();
    ASSERT_EQ(templates.size(), 2u);
    for (const auto &tpl : templates) {
        EXPECT_EQ(tpl.support, 50u);
        EXPECT_EQ(tpl.tokens.size(), 3u);  // the variable is wildcarded
    }
}

TEST(PrefixTreeTest, ClassifyDistinguishesByPosition)
{
    PrefixTree tree = PrefixTree::build(positionalCorpus(), smallConfig());
    size_t t1 = tree.classify("eth0 link up 999");
    size_t t2 = tree.classify("node up link 999");
    ASSERT_NE(t1, SIZE_MAX);
    ASSERT_NE(t2, SIZE_MAX);
    EXPECT_NE(t1, t2);
    EXPECT_EQ(tree.classify("something totally different here"),
              SIZE_MAX);
}

TEST(PrefixTreeTest, CompileRejectsConflictingColumns)
{
    PrefixTree tree = PrefixTree::build(positionalCorpus(), smallConfig());
    const auto &templates = tree.extractTemplates();
    // "up" needs column 2 for one template and column 1 for the other:
    // one shared cuckoo entry cannot hold both (documented limit).
    accel::FilterProgram program;
    Status st = compilePrefixTemplates(templates, &program);
    EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(PrefixTreeTest, CompiledProgramFiltersByColumn)
{
    // Disjoint-token positional templates compile and filter.
    std::string text;
    for (int i = 0; i < 40; ++i) {
        text += "kernel: oops code " + std::to_string(i) + "\n";
        text += "sshd: login user" + std::to_string(i) + " ok\n";
    }
    PrefixTree tree = PrefixTree::build(text, smallConfig());
    const auto &templates = tree.extractTemplates();
    ASSERT_EQ(templates.size(), 2u);

    accel::FilterProgram program;
    ASSERT_TRUE(compilePrefixTemplates(templates, &program).isOk());

    compress::LzahPageEncoder enc;
    ASSERT_NE(enc.addLine("kernel: oops code 77"),
              compress::AddLineResult::kRejected);
    ASSERT_NE(enc.addLine("sshd: login userX ok"),
              compress::AddLineResult::kRejected);
    // Same tokens, wrong positions: must NOT match.
    ASSERT_NE(enc.addLine("oops kernel: 12 code"),
              compress::AddLineResult::kRejected);
    enc.flush();

    accel::Accelerator accel;
    accel.configureProgram(std::move(program));
    std::vector<compress::ByteView> views;
    for (const auto &p : enc.pages()) {
        views.emplace_back(p);
    }
    accel::AccelResult result;
    ASSERT_TRUE(accel.process(views, accel::Mode::kFilter,
                              &result).isOk());
    EXPECT_EQ(result.lines_kept, 2u);
    for (const auto &line : result.kept) {
        EXPECT_NE(line.text, "oops kernel: 12 code");
    }
}

TEST(PrefixTreeTest, EmptyCorpus)
{
    PrefixTree tree = PrefixTree::build("", smallConfig());
    EXPECT_TRUE(tree.extractTemplates().empty());
}

TEST(PrefixTreeTest, CompileEmptyTemplatesRejected)
{
    accel::FilterProgram program;
    EXPECT_FALSE(compilePrefixTemplates({}, &program).isOk());
}

TEST(PrefixTreeTest, CompileTooManyTemplatesRejected)
{
    std::vector<PrefixTemplate> templates(9);
    for (size_t i = 0; i < templates.size(); ++i) {
        templates[i].tokens = {{0, "tok" + std::to_string(i)}};
    }
    accel::FilterProgram program;
    EXPECT_EQ(compilePrefixTemplates(templates, &program).code(),
              StatusCode::kCapacityExceeded);
}

} // namespace
} // namespace mithril::templates
