#include "templates/template_tagger.h"

#include <gtest/gtest.h>

#include "common/text.h"
#include "compress/lzah.h"
#include "loggen/log_generator.h"

namespace mithril::templates {
namespace {

struct TaggedCorpus {
    std::vector<std::string> lines;
    std::vector<compress::Bytes> pages;
    std::vector<compress::ByteView> views;
    std::vector<ExtractedTemplate> templates;
    FtTree tree;
};

TaggedCorpus
makeCorpus(size_t template_count)
{
    TaggedCorpus corpus{.lines = {}, .pages = {}, .views = {},
                        .templates = {}, .tree = FtTree::build("", {})};
    // template_count distinct two-token templates + a variable token.
    std::string text;
    for (size_t t = 0; t < template_count; ++t) {
        for (int i = 0; i < 40; ++i) {
            std::string line = "tplA" + std::to_string(t) + " tplB" +
                               std::to_string(t) + " v" +
                               std::to_string(i);
            text += line + "\n";
            corpus.lines.push_back(std::move(line));
        }
    }
    FtTreeConfig cfg;
    cfg.token_min_count = 30;
    cfg.token_frequency_ratio = 0.0;
    cfg.template_min_support = 30;
    corpus.tree = FtTree::build(text, cfg);
    corpus.templates = corpus.tree.extractTemplates();

    compress::LzahPageEncoder enc;
    for (const std::string &line : corpus.lines) {
        EXPECT_NE(enc.addLine(line), compress::AddLineResult::kRejected);
    }
    enc.flush();
    corpus.pages = std::move(enc.pages());
    for (const auto &p : corpus.pages) {
        corpus.views.emplace_back(p);
    }
    return corpus;
}

TEST(TemplateTaggerTest, TagsEveryLineSinglePass)
{
    TaggedCorpus corpus = makeCorpus(5);
    ASSERT_EQ(corpus.templates.size(), 5u);

    accel::Accelerator accel(accel::AccelConfig{
        .keep_lines = false, .collect_masks = true});
    TagResult result;
    ASSERT_TRUE(tagTemplates(corpus.templates, corpus.views, &accel,
                             &result).isOk());
    EXPECT_EQ(result.passes, 1u);
    ASSERT_EQ(result.tags.size(), corpus.lines.size());
    EXPECT_EQ(result.untagged, 0u);
    for (uint64_t count : result.histogram) {
        EXPECT_EQ(count, 40u);
    }
    // Tags agree with tree classification line by line.
    for (size_t i = 0; i < corpus.lines.size(); ++i) {
        EXPECT_EQ(result.tags[i], corpus.tree.classify(corpus.lines[i]))
            << corpus.lines[i];
    }
}

TEST(TemplateTaggerTest, MultiPassBeyondEightTemplates)
{
    TaggedCorpus corpus = makeCorpus(20);
    ASSERT_EQ(corpus.templates.size(), 20u);

    accel::Accelerator accel(accel::AccelConfig{
        .keep_lines = false, .collect_masks = true});
    TagResult result;
    ASSERT_TRUE(tagTemplates(corpus.templates, corpus.views, &accel,
                             &result).isOk());
    EXPECT_EQ(result.passes, 3u);  // ceil(20 / 8)
    EXPECT_EQ(result.untagged, 0u);
    EXPECT_GT(result.cycles, 0u);
    uint64_t total = 0;
    for (uint64_t count : result.histogram) {
        total += count;
    }
    EXPECT_EQ(total, corpus.lines.size());
}

TEST(TemplateTaggerTest, UnknownLinesStayUntagged)
{
    TaggedCorpus corpus = makeCorpus(3);
    // Append pages holding out-of-library lines.
    compress::LzahPageEncoder enc;
    ASSERT_NE(enc.addLine("nothing matches here"),
              compress::AddLineResult::kRejected);
    enc.flush();
    std::vector<compress::Bytes> extra = std::move(enc.pages());
    for (const auto &p : extra) {
        corpus.pages.push_back(p);
    }
    corpus.views.clear();
    for (const auto &p : corpus.pages) {
        corpus.views.emplace_back(p);
    }

    accel::Accelerator accel(accel::AccelConfig{
        .keep_lines = false, .collect_masks = true});
    TagResult result;
    ASSERT_TRUE(tagTemplates(corpus.templates, corpus.views, &accel,
                             &result).isOk());
    EXPECT_EQ(result.untagged, 1u);
    EXPECT_EQ(result.tags.back(), kUntagged);
}

TEST(TemplateTaggerTest, MostSpecificTemplateWins)
{
    // Two overlapping templates: (A) and (A B); a line with both tokens
    // must be tagged with the deeper one.
    std::vector<ExtractedTemplate> templates(2);
    templates[0].tokens = {"A"};
    templates[1].tokens = {"A", "B"};

    compress::LzahPageEncoder enc;
    ASSERT_NE(enc.addLine("A alone"), compress::AddLineResult::kRejected);
    ASSERT_NE(enc.addLine("A with B"),
              compress::AddLineResult::kRejected);
    enc.flush();
    std::vector<compress::ByteView> views;
    for (const auto &p : enc.pages()) {
        views.emplace_back(p);
    }

    accel::Accelerator accel(accel::AccelConfig{
        .keep_lines = false, .collect_masks = true});
    TagResult result;
    ASSERT_TRUE(tagTemplates(templates, views, &accel, &result).isOk());
    ASSERT_EQ(result.tags.size(), 2u);
    EXPECT_EQ(result.tags[0], 0u);
    EXPECT_EQ(result.tags[1], 1u);
}

TEST(TemplateTaggerTest, RequiresMaskCollection)
{
    TaggedCorpus corpus = makeCorpus(2);
    accel::Accelerator accel;  // collect_masks defaults to false
    TagResult result;
    EXPECT_EQ(tagTemplates(corpus.templates, corpus.views, &accel,
                           &result).code(),
              StatusCode::kInvalidArgument);
}

TEST(TemplateTaggerTest, SyntheticDatasetEndToEnd)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[3]);
    std::string text = gen.generate(512 * 1024);
    FtTreeConfig cfg;
    cfg.template_min_support = 64;
    FtTree tree = FtTree::build(text, cfg);
    auto templates = tree.extractTemplates();
    ASSERT_GT(templates.size(), 3u);

    compress::LzahPageEncoder enc;
    size_t line_count = 0;
    forEachLine(text, [&](std::string_view line) {
        enc.addLine(line);
        ++line_count;
    });
    enc.flush();
    std::vector<compress::ByteView> views;
    for (const auto &p : enc.pages()) {
        views.emplace_back(p);
    }

    accel::Accelerator accel(accel::AccelConfig{
        .keep_lines = false, .collect_masks = true});
    TagResult result;
    ASSERT_TRUE(tagTemplates(templates, views, &accel, &result).isOk());
    EXPECT_EQ(result.tags.size(), line_count);
    // The Zipf head templates must dominate the tagged mass.
    uint64_t tagged = line_count - result.untagged;
    EXPECT_GT(tagged, line_count / 2);
}

} // namespace
} // namespace mithril::templates
