/**
 * @file
 * Crash-consistency contract at the MithriLog API level (DESIGN.md
 * §10) — the in-process counterpart of tools/crash_matrix.sh. A
 * deterministic power cut kills the device mid-ingest; the dumped NAND
 * recovers on a fresh system and must satisfy:
 *
 *   durability:  recovered lines >= acknowledged (durable) lines;
 *   prefix:      the recovered store is exactly the first R lines of
 *                the ingest stream — every query answers the R-line
 *                prefix oracle, no phantom and no missing match;
 *   determinism: re-running the same cut reproduces acknowledged,
 *                recovered, and match counts bit-for-bit;
 *   completion:  a cut point past the last write never fires.
 *
 * Append-after-recovery (journal generation chain): a recovered store
 * is read-only until reopen(), which re-opens the journal under a
 * fresh generation linked to the replayed tail. The same contract must
 * then hold across a SECOND cut — recovery replays the whole
 * multi-generation chain as one logical prefix of the concatenated
 * ingest stream — and repeated recoveries stay byte-identical.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/mithrilog.h"
#include "fault/fault_plan.h"
#include "query/parser.h"

namespace mithril::core {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

/** Fixed synthetic corpus: every line carries the common token
 *  `payload` plus a unique `seqN` token, so full-match and point
 *  queries both discriminate the recovered prefix. */
std::vector<std::string>
corpus(size_t lines)
{
    std::vector<std::string> out;
    out.reserve(lines);
    for (size_t i = 0; i < lines; ++i) {
        out.push_back("crash payload seq" + std::to_string(i) +
                      " filler text keeps pages turning over quickly");
    }
    return out;
}

/** Outcome of one power-cut run (all fields deterministic). */
struct CutOutcome {
    bool fired = false;          ///< the cut point was reached
    uint64_t acknowledged = 0;   ///< durable lines when the device died
    uint64_t recovered = 0;      ///< lines in the recovered store
    uint64_t matches = 0;        ///< "payload" matches after recovery
};

class CrashRecoveryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string stem = ::testing::TempDir() + "mithrilog_crash_" +
                           ::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name();
        path_ = stem + ".img";
        path2_ = stem + "_g2.img";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        std::remove(path2_.c_str());
    }

    /** Ingests the corpus under a power cut at write @p cut_after,
     *  dumps the dead device, recovers it, and reports the outcome. */
    CutOutcome
    runCut(const std::vector<std::string> &lines, uint64_t cut_after)
    {
        CutOutcome out;
        fault::FaultPlanConfig fc;
        fc.seed = 1;
        fc.power_cut_after_writes = cut_after;
        fault::FaultPlan plan(fc);

        MithriLog log;
        log.ssd().attachFaultPlan(&plan);
        Status st = Status::ok();
        for (const std::string &line : lines) {
            st = log.ingestLine(line);
            if (!st.isOk()) {
                break;
            }
        }
        if (st.isOk()) {
            st = log.flush();
        }
        if (st.isOk()) {
            // The cut point lies past the run's last device program.
            return out;
        }
        EXPECT_EQ(st.code(), StatusCode::kUnavailable)
            << st.toString();
        out.fired = true;
        out.acknowledged = log.durableLineCount();
        EXPECT_TRUE(log.saveDeviceImage(path_).isOk());

        MithriLog mounted;
        EXPECT_TRUE(mounted.recover(path_).isOk());
        EXPECT_TRUE(mounted.sealed());
        EXPECT_TRUE(mounted.recovered());
        out.recovered = mounted.lineCount();

        QueryResult r;
        EXPECT_TRUE(mounted.run(mustParse("payload"), &r).isOk());
        out.matches = r.matched_lines;

        // Prefix integrity: the boundary lines pin the cut exactly —
        // seq(R-1) must be present, seq(R) must not.
        if (out.recovered > 0) {
            QueryResult last;
            std::string q_last =
                "seq" + std::to_string(out.recovered - 1);
            EXPECT_TRUE(mounted.run(mustParse(q_last), &last).isOk());
            EXPECT_EQ(last.matched_lines, 1u) << q_last;
        }
        if (out.recovered < lines.size()) {
            QueryResult past;
            std::string q_past = "seq" + std::to_string(out.recovered);
            EXPECT_TRUE(mounted.run(mustParse(q_past), &past).isOk());
            EXPECT_EQ(past.matched_lines, 0u) << q_past;
        }
        return out;
    }

    /** Outcome of a two-generation run: cut at @p cut1, recover the
     *  dump, reopen under a fresh generation, resume with the rest of
     *  the corpus under globally monotone write ordinals, cut again at
     *  global ordinal cut1+cut2, recover again. */
    struct Cut2Outcome {
        bool fired = false;         ///< the second cut was reached
        uint64_t first_recovered = 0;
        uint64_t acknowledged = 0;  ///< durable lines at the 2nd cut
        uint64_t recovered = 0;     ///< lines after the 2nd recovery
        uint64_t matches = 0;
    };

    Cut2Outcome
    runCut2(const std::vector<std::string> &lines, size_t split,
            uint64_t cut1, uint64_t cut2)
    {
        Cut2Outcome out;
        std::vector<std::string> first_life(lines.begin(),
                                            lines.begin() + split);
        CutOutcome first = runCut(first_life, cut1);
        EXPECT_TRUE(first.fired) << "cut1=" << cut1;
        if (!first.fired) {
            return out;
        }
        out.first_recovered = first.recovered;

        // Second life: the write-ordinal stream continues at cut1, so
        // cut_after addresses the global ordinal cut1+cut2.
        fault::FaultPlanConfig fc;
        fc.seed = 1;
        fc.write_draw_base = cut1;
        fc.power_cut_after_writes = cut1 + cut2;
        fault::FaultPlan plan(fc);

        MithriLog log;
        EXPECT_TRUE(log.recover(path_).isOk());
        log.ssd().attachFaultPlan(&plan);
        Status st = log.reopen();
        if (st.isOk()) {
            EXPECT_FALSE(log.sealed());
            EXPECT_FALSE(log.recovered());
            // The client resumes from the recovered position (re-
            // feeding the unacknowledged tail), so the store stays a
            // prefix of the one logical ingest stream.
            for (size_t i = first.recovered;
                 i < lines.size() && st.isOk(); ++i) {
                st = log.ingestLine(lines[i]);
            }
            if (st.isOk()) {
                st = log.flush();
            }
        }
        if (st.isOk()) {
            // cut2 lies past the second life's last program.
            out.recovered = log.lineCount();
            return out;
        }
        EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.toString();
        out.fired = true;
        out.acknowledged = log.durableLineCount();
        EXPECT_TRUE(log.saveDeviceImage(path2_).isOk());

        MithriLog mounted;
        EXPECT_TRUE(mounted.recover(path2_).isOk());
        out.recovered = mounted.lineCount();

        QueryResult r;
        EXPECT_TRUE(mounted.run(mustParse("payload"), &r).isOk());
        out.matches = r.matched_lines;
        // Prefix integrity over the CONCATENATED stream: the chain
        // replays as one logical prefix, so the global seq boundary
        // pins the cut exactly.
        if (out.recovered > 0) {
            QueryResult last;
            std::string q_last =
                "seq" + std::to_string(out.recovered - 1);
            EXPECT_TRUE(mounted.run(mustParse(q_last), &last).isOk());
            EXPECT_EQ(last.matched_lines, 1u)
                << q_last << " cut=(" << cut1 << "," << cut2 << ")";
        }
        if (out.recovered < lines.size()) {
            QueryResult past;
            std::string q_past = "seq" + std::to_string(out.recovered);
            EXPECT_TRUE(mounted.run(mustParse(q_past), &past).isOk());
            EXPECT_EQ(past.matched_lines, 0u)
                << q_past << " cut=(" << cut1 << "," << cut2 << ")";
        }
        return out;
    }

    std::string path_;
    std::string path2_;
};

TEST_F(CrashRecoveryTest, PowerCutLosesNoAcknowledgedLine)
{
    std::vector<std::string> lines = corpus(2000);
    bool any_fired = false;
    for (uint64_t cut : {1ull, 2ull, 3ull, 5ull, 8ull}) {
        CutOutcome o = runCut(lines, cut);
        if (!o.fired) {
            continue;
        }
        any_fired = true;
        EXPECT_GE(o.recovered, o.acknowledged) << "cut_after=" << cut;
        EXPECT_LE(o.recovered, lines.size()) << "cut_after=" << cut;
        // Every recovered line carries `payload`: the full-match count
        // IS the prefix oracle.
        EXPECT_EQ(o.matches, o.recovered) << "cut_after=" << cut;
    }
    EXPECT_TRUE(any_fired)
        << "no cut point fired on a multi-page ingest";
}

TEST_F(CrashRecoveryTest, RecoveredStoreIsReadOnlyUntilReopen)
{
    std::vector<std::string> lines = corpus(2000);
    CutOutcome o = runCut(lines, 8);
    ASSERT_TRUE(o.fired);
    ASSERT_GT(o.recovered, 0u);

    // Remount once more and probe the append-after-recovery contract:
    // read-only before reopen(), a normal live store after.
    MithriLog mounted;
    ASSERT_TRUE(mounted.recover(path_).isOk());
    EXPECT_EQ(mounted.ingestLine("late arrival").code(),
              StatusCode::kInvalidArgument);
    QueryResult r;
    ASSERT_TRUE(mounted.run(mustParse("zzz_absent_token"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 0u);

    ASSERT_TRUE(mounted.reopen().isOk());
    EXPECT_FALSE(mounted.sealed());
    EXPECT_FALSE(mounted.recovered());
    EXPECT_GE(mounted.journalGeneration(), 2u);
    ASSERT_TRUE(
        mounted.ingestLine("crash payload postreopen arrival").isOk());
    ASSERT_TRUE(mounted.flush().isOk());
    EXPECT_EQ(mounted.lineCount(), o.recovered + 1);
    QueryResult after;
    ASSERT_TRUE(mounted.run(mustParse("postreopen"), &after).isOk());
    EXPECT_EQ(after.matched_lines, 1u);
}

TEST_F(CrashRecoveryTest, SecondGenerationCutLosesNoAcknowledgedLine)
{
    // In-process multi-generation matrix: the crash-consistency
    // contract holds at every (cut1, cut2) pair, over the concatenated
    // two-life ingest stream.
    std::vector<std::string> lines = corpus(3000);
    bool any_fired = false;
    for (uint64_t cut1 : {2ull, 4ull, 6ull}) {
        for (uint64_t cut2 : {1ull, 2ull, 3ull, 5ull, 9ull}) {
            Cut2Outcome o = runCut2(lines, 2000, cut1, cut2);
            if (!o.fired) {
                continue;
            }
            any_fired = true;
            EXPECT_GE(o.recovered, o.acknowledged)
                << "cut=(" << cut1 << "," << cut2 << ")";
            EXPECT_LE(o.recovered, lines.size())
                << "cut=(" << cut1 << "," << cut2 << ")";
            EXPECT_EQ(o.matches, o.recovered)
                << "cut=(" << cut1 << "," << cut2 << ")";
            // A cut during the reopen itself replays the pre-resume
            // state; anything later must keep the first life's prefix.
            EXPECT_GE(o.acknowledged, o.first_recovered)
                << "cut=(" << cut1 << "," << cut2 << ")";
        }
    }
    EXPECT_TRUE(any_fired)
        << "no second-generation cut fired across the grid";
}

TEST_F(CrashRecoveryTest, SecondGenerationCutReplaysBitForBit)
{
    std::vector<std::string> lines = corpus(3000);
    Cut2Outcome a = runCut2(lines, 2000, 4, 3);
    Cut2Outcome b = runCut2(lines, 2000, 4, 3);
    EXPECT_EQ(a.fired, b.fired);
    EXPECT_EQ(a.first_recovered, b.first_recovered);
    EXPECT_EQ(a.acknowledged, b.acknowledged);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.matches, b.matches);
}

TEST_F(CrashRecoveryTest, DoubleRecoverIsIdempotent)
{
    std::vector<std::string> lines = corpus(2000);
    CutOutcome o = runCut(lines, 8);
    ASSERT_TRUE(o.fired);
    ASSERT_GT(o.recovered, 0u);

    // The same crash image recovers to the same store, however many
    // times it is mounted — recovery never mutates the image.
    for (int round = 0; round < 2; ++round) {
        MithriLog mounted;
        ASSERT_TRUE(mounted.recover(path_).isOk());
        EXPECT_EQ(mounted.lineCount(), o.recovered) << round;
        QueryResult r;
        ASSERT_TRUE(mounted.run(mustParse("payload"), &r).isOk());
        EXPECT_EQ(r.matched_lines, o.matches) << round;
    }
}

TEST_F(CrashRecoveryTest, ReopenWithoutIngestRecoversToSameStore)
{
    // recover -> reopen -> ingest nothing -> dump -> recover must be
    // an identity round trip: the fresh generation holds only the base
    // link, and its budget replays exactly the verified prefix.
    std::vector<std::string> lines = corpus(2000);
    CutOutcome o = runCut(lines, 8);
    ASSERT_TRUE(o.fired);
    ASSERT_GT(o.recovered, 0u);

    MithriLog log;
    ASSERT_TRUE(log.recover(path_).isOk());
    ASSERT_TRUE(log.reopen().isOk());
    ASSERT_TRUE(log.saveDeviceImage(path2_).isOk());

    for (int round = 0; round < 2; ++round) {
        MithriLog mounted;
        ASSERT_TRUE(mounted.recover(path2_).isOk());
        EXPECT_EQ(mounted.lineCount(), o.recovered) << round;
        EXPECT_EQ(mounted.recoveredGeneration(), 2u) << round;
        EXPECT_EQ(mounted.recoveredGenerations(), 2u) << round;
        QueryResult r;
        ASSERT_TRUE(mounted.run(mustParse("payload"), &r).isOk());
        EXPECT_EQ(r.matched_lines, o.matches) << round;
    }
}

TEST_F(CrashRecoveryTest, SealIsTerminalAcrossRecovery)
{
    // recover -> reopen -> ingest -> seal -> recover: the seal must
    // survive recovery of the second-generation chain and make any
    // further reopen refuse.
    std::vector<std::string> lines = corpus(2000);
    CutOutcome o = runCut(lines, 8);
    ASSERT_TRUE(o.fired);
    ASSERT_GT(o.recovered, 0u);

    MithriLog log;
    ASSERT_TRUE(log.recover(path_).isOk());
    ASSERT_TRUE(log.reopen().isOk());
    ASSERT_TRUE(log.ingestLine("crash payload final arrival").isOk());
    ASSERT_TRUE(log.seal().isOk());
    ASSERT_TRUE(log.saveDeviceImage(path2_).isOk());

    MithriLog mounted;
    ASSERT_TRUE(mounted.recover(path2_).isOk());
    EXPECT_EQ(mounted.lineCount(), o.recovered + 1);
    Status st = mounted.reopen();
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition)
        << st.toString();
}

TEST_F(CrashRecoveryTest, ReopenAfterFinalPageDroppedByReplayCut)
{
    // Damage the highest data page of a crash image so recovery's
    // verify pass discards it. Reopening that store must pin the
    // replay cut: the dropped page stays dropped after the next
    // recovery (no resurrection), and new ingest lands after it.
    std::vector<std::string> lines = corpus(2000);
    CutOutcome o = runCut(lines, 8);
    ASSERT_TRUE(o.fired);
    ASSERT_GT(o.recovered, 0u);

    std::string img;
    {
        std::ifstream in(path_, std::ios::binary);
        ASSERT_TRUE(in.good());
        std::ostringstream ss;
        ss << in.rdbuf();
        img = ss.str();
    }
    uint64_t pages = 0;
    ASSERT_GE(img.size(), 16u);
    std::memcpy(&pages, img.data() + 8, sizeof pages);

    bool found = false;
    for (uint64_t p = pages; p-- > 2 && !found;) {
        std::string damaged = img;
        size_t off = 16 + p * 4096 + 2048;
        ASSERT_LT(off, damaged.size());
        damaged[off] = static_cast<char>(damaged[off] ^ 0x5a);
        {
            std::ofstream outf(path2_, std::ios::binary);
            outf << damaged;
        }
        MithriLog m;
        if (!m.recover(path2_).isOk()) {
            continue; // damaged a superblock slot: not this page
        }
        if (m.metrics().counter("recovery.pages_discarded").value() <
                1 ||
            m.lineCount() == 0) {
            continue; // damaged an index/journal page: replay shrank
                      // or ignored it without a verify discard
        }
        found = true;
        uint64_t dropped_to = m.lineCount();
        ASSERT_LT(dropped_to, o.recovered);

        ASSERT_TRUE(m.reopen().isOk());
        ASSERT_TRUE(
            m.ingestLine("crash payload postdrop arrival").isOk());
        ASSERT_TRUE(m.flush().isOk());
        ASSERT_TRUE(m.saveDeviceImage(path2_).isOk());

        MithriLog mounted;
        ASSERT_TRUE(mounted.recover(path2_).isOk());
        EXPECT_EQ(mounted.lineCount(), dropped_to + 1);
        QueryResult post;
        ASSERT_TRUE(mounted.run(mustParse("postdrop"), &post).isOk());
        EXPECT_EQ(post.matched_lines, 1u);
        // The discarded tail must not resurrect: the first line of the
        // dropped page stays absent.
        QueryResult ghost;
        std::string q_ghost = "seq" + std::to_string(dropped_to);
        ASSERT_TRUE(mounted.run(mustParse(q_ghost), &ghost).isOk());
        EXPECT_EQ(ghost.matched_lines, 0u) << q_ghost;
    }
    EXPECT_TRUE(found)
        << "no byte flip produced a verify-discarded final page";
}

TEST_F(CrashRecoveryTest, CutReplaysBitForBit)
{
    std::vector<std::string> lines = corpus(2000);
    CutOutcome a = runCut(lines, 4);
    CutOutcome b = runCut(lines, 4);
    EXPECT_EQ(a.fired, b.fired);
    EXPECT_EQ(a.acknowledged, b.acknowledged);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.matches, b.matches);
}

TEST_F(CrashRecoveryTest, CutPastLastWriteNeverFires)
{
    std::vector<std::string> lines = corpus(200);
    CutOutcome o = runCut(lines, 1u << 20);
    EXPECT_FALSE(o.fired);
}

} // namespace
} // namespace mithril::core
