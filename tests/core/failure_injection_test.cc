/**
 * @file
 * Failure injection: corrupted storage must never crash and never
 * produce silent wrong data. Raw decoders surface typed errors
 * (kCorruptData for structural damage, kDataLoss for CRC-detected byte
 * damage); the query path degrades gracefully instead — damaged pages
 * are dropped (counted in QueryBreakdown::pages_dropped) and the query
 * still answers from the readable remainder. Also exercises degenerate
 * system states (query before ingest, flush with nothing pending,
 * double flush).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lzah.h"
#include "core/mithrilog.h"
#include "query/parser.h"

namespace mithril::core {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

std::string
corpus()
{
    std::string text;
    for (int i = 0; i < 2000; ++i) {
        text += "unit " + std::to_string(i) +
                " status nominal check passed\n";
    }
    return text;
}

TEST(FailureInjectionTest, CorruptedPageDegradesGracefully)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(corpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    ASSERT_GT(system.dataPageCount(), 1u);

    // Baseline before damage.
    QueryResult clean;
    ASSERT_TRUE(system.run(mustParse("nominal"), &clean).isOk());
    EXPECT_EQ(clean.matched_lines, 2000u);
    EXPECT_EQ(clean.pages_dropped, 0u);

    // Smash the first data page's header: its damage is persistent
    // (no fault plan), so the page is dropped — the query must still
    // succeed and answer from the readable remainder.
    auto page =
        system.ssd().store().mutablePage(system.dataPages().front());
    for (size_t i = 0; i < 16; ++i) {
        page[i] ^= 0xa5;
    }
    QueryResult r;
    Status st = system.run(mustParse("nominal"), &r);
    ASSERT_TRUE(st.isOk()) << st.toString();
    EXPECT_EQ(r.pages_dropped, 1u);
    EXPECT_EQ(r.breakdown.pages_dropped, 1u);
    EXPECT_LT(r.matched_lines, clean.matched_lines);
    EXPECT_GT(r.matched_lines, 0u);
    EXPECT_GT(system.metrics().counter("core.pages_dropped").value(),
              0u);
}

TEST(FailureInjectionTest, RandomPayloadCorruptionNeverCrashes)
{
    // Flip bytes at random positions across the data pages; every
    // query either succeeds (corruption missed/benign) or reports
    // kCorruptData. Decoders must stay within bounds throughout.
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        MithriLog system;
        ASSERT_TRUE(system.ingestText(corpus()).isOk());
        EXPECT_TRUE(system.flush().isOk());
        uint64_t pages = system.dataPageCount();
        for (int flips = 0; flips < 8; ++flips) {
            auto page = system.ssd().store().mutablePage(
                system.dataPages()[rng.below(pages)]);
            page[rng.below(page.size())] ^=
                static_cast<uint8_t>(1 + rng.below(255));
        }
        QueryResult r;
        Status st = system.run(mustParse("nominal & check"), &r);
        // The degradation ladder drops damaged pages, so queries
        // succeed; any residual typed failure is acceptable, a crash
        // or silent misparse is not.
        if (!st.isOk()) {
            EXPECT_TRUE(st.code() == StatusCode::kCorruptData ||
                        st.code() == StatusCode::kDataLoss)
                << st.toString();
        }
    }
}

TEST(FailureInjectionTest, TruncatedPageDecodeRejected)
{
    compress::LzahPageEncoder enc;
    for (int i = 0; i < 50; ++i) {
        ASSERT_NE(enc.addLine("some line " + std::to_string(i)),
                  compress::AddLineResult::kRejected);
    }
    enc.flush();
    ASSERT_EQ(enc.pages().size(), 1u);
    // Present only the header and a sliver of the first chunk: the
    // decoder must hit the boundary check, not read past the view.
    compress::ByteView sliver(enc.pages()[0].data(), 48);
    compress::Bytes out;
    Status st = compress::lzahDecodePage(sliver, false, &out);
    // The page CRC covers the payload, so truncation reads as detected
    // byte damage (kDataLoss) before structural parsing even starts.
    EXPECT_EQ(st.code(), StatusCode::kDataLoss);
    EXPECT_TRUE(out.empty());
}

TEST(FailureInjectionTest, RandomBytesAsPageRejected)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        compress::Bytes junk(4096);
        for (auto &b : junk) {
            b = static_cast<uint8_t>(rng.below(256));
        }
        compress::Bytes out;
        Status st = compress::lzahDecodePage(junk, true, &out);
        // Random magic almost never validates; either way: no crash,
        // and failure is typed.
        if (!st.isOk()) {
            EXPECT_TRUE(st.code() == StatusCode::kCorruptData ||
                        st.code() == StatusCode::kDataLoss)
                << st.toString();
        }
    }
}

TEST(FailureInjectionTest, QueriesOnEmptySystem)
{
    MithriLog system;
    EXPECT_TRUE(system.flush().isOk());  // nothing pending: must be a no-op
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("anything"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 0u);
    EXPECT_EQ(r.pages_total, 0u);
}

TEST(FailureInjectionTest, DoubleFlushIsIdempotent)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText("one line here\n").isOk());
    EXPECT_TRUE(system.flush().isOk());
    uint64_t pages = system.dataPageCount();
    EXPECT_TRUE(system.flush().isOk());
    EXPECT_EQ(system.dataPageCount(), pages);
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("one"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 1u);
}

TEST(FailureInjectionTest, IngestAfterFlushKeepsWorking)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText("first era alpha\n").isOk());
    EXPECT_TRUE(system.flush().isOk());
    ASSERT_TRUE(system.ingestText("second era beta\n").isOk());
    EXPECT_TRUE(system.flush().isOk());
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("alpha | beta"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 2u);
}

} // namespace
} // namespace mithril::core
