/**
 * @file
 * Failure injection: corrupted storage must surface as kCorruptData
 * through every read path — never a crash, never silent wrong data.
 * Also exercises degenerate system states (query before ingest, flush
 * with nothing pending, double flush).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lzah.h"
#include "core/mithrilog.h"
#include "query/parser.h"

namespace mithril::core {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

std::string
corpus()
{
    std::string text;
    for (int i = 0; i < 2000; ++i) {
        text += "unit " + std::to_string(i) +
                " status nominal check passed\n";
    }
    return text;
}

TEST(FailureInjectionTest, CorruptedPageMagicFailsQueries)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(corpus()).isOk());
    system.flush();
    ASSERT_GT(system.dataPageCount(), 0u);

    // Smash the first data page's header.
    auto page = system.ssd().store().mutablePage(0);
    for (size_t i = 0; i < 16; ++i) {
        page[i] ^= 0xa5;
    }
    QueryResult r;
    Status st = system.run(mustParse("nominal"), &r);
    EXPECT_EQ(st.code(), StatusCode::kCorruptData);
}

TEST(FailureInjectionTest, RandomPayloadCorruptionNeverCrashes)
{
    // Flip bytes at random positions across the data pages; every
    // query either succeeds (corruption missed/benign) or reports
    // kCorruptData. Decoders must stay within bounds throughout.
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        MithriLog system;
        ASSERT_TRUE(system.ingestText(corpus()).isOk());
        system.flush();
        uint64_t pages = system.dataPageCount();
        for (int flips = 0; flips < 8; ++flips) {
            auto page = system.ssd().store().mutablePage(
                rng.below(pages));
            page[rng.below(page.size())] ^=
                static_cast<uint8_t>(1 + rng.below(255));
        }
        QueryResult r;
        Status st = system.run(mustParse("nominal & check"), &r);
        if (!st.isOk()) {
            EXPECT_EQ(st.code(), StatusCode::kCorruptData);
        }
    }
}

TEST(FailureInjectionTest, TruncatedPageDecodeRejected)
{
    compress::LzahPageEncoder enc;
    for (int i = 0; i < 50; ++i) {
        ASSERT_NE(enc.addLine("some line " + std::to_string(i)),
                  compress::AddLineResult::kRejected);
    }
    enc.flush();
    ASSERT_EQ(enc.pages().size(), 1u);
    // Present only the header and a sliver of the first chunk: the
    // decoder must hit the boundary check, not read past the view.
    compress::ByteView sliver(enc.pages()[0].data(), 48);
    compress::Bytes out;
    Status st = compress::lzahDecodePage(sliver, false, &out);
    EXPECT_EQ(st.code(), StatusCode::kCorruptData);
}

TEST(FailureInjectionTest, RandomBytesAsPageRejected)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        compress::Bytes junk(4096);
        for (auto &b : junk) {
            b = static_cast<uint8_t>(rng.below(256));
        }
        compress::Bytes out;
        Status st = compress::lzahDecodePage(junk, true, &out);
        // Random magic almost never validates; either way: no crash,
        // and failure is typed.
        if (!st.isOk()) {
            EXPECT_EQ(st.code(), StatusCode::kCorruptData);
        }
    }
}

TEST(FailureInjectionTest, QueriesOnEmptySystem)
{
    MithriLog system;
    system.flush();  // nothing pending: must be a no-op
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("anything"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 0u);
    EXPECT_EQ(r.pages_total, 0u);
}

TEST(FailureInjectionTest, DoubleFlushIsIdempotent)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText("one line here\n").isOk());
    system.flush();
    uint64_t pages = system.dataPageCount();
    system.flush();
    EXPECT_EQ(system.dataPageCount(), pages);
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("one"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 1u);
}

TEST(FailureInjectionTest, IngestAfterFlushKeepsWorking)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText("first era alpha\n").isOk());
    system.flush();
    ASSERT_TRUE(system.ingestText("second era beta\n").isOk());
    system.flush();
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("alpha | beta"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 2u);
}

} // namespace
} // namespace mithril::core
