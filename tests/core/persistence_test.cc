/**
 * @file
 * Device-image persistence: a saved MithriLog system restored into a
 * fresh instance must answer every query identically — same matches,
 * same page pruning — and keep accepting ingest afterwards.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/mithrilog.h"
#include "loggen/log_generator.h"
#include "query/parser.h"

namespace mithril::core {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

/** Temp file path cleaned up by each test. */
class PersistenceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "mithrilog_image_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(PersistenceTest, RoundTripPreservesQueries)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
    std::string text = gen.generate(1 << 20);

    MithriLog original;
    ASSERT_TRUE(original.ingestText(text).isOk());
    ASSERT_TRUE(original.saveImage(path_).isOk());

    MithriLog restored;
    ASSERT_TRUE(restored.loadImage(path_).isOk());

    EXPECT_EQ(restored.lineCount(), original.lineCount());
    EXPECT_EQ(restored.rawBytes(), original.rawBytes());
    EXPECT_EQ(restored.dataPageCount(), original.dataPageCount());

    for (const char *q :
         {"KERNEL & INFO", "FATAL & !APP", "error | corrected"}) {
        QueryResult a, b;
        ASSERT_TRUE(original.run(mustParse(q), &a).isOk()) << q;
        ASSERT_TRUE(restored.run(mustParse(q), &b).isOk()) << q;
        EXPECT_EQ(a.matched_lines, b.matched_lines) << q;
        EXPECT_EQ(a.pages_scanned, b.pages_scanned) << q;
    }
}

TEST_F(PersistenceTest, IngestContinuesAfterRestore)
{
    MithriLog original;
    ASSERT_TRUE(original.ingestText("before save alpha\n").isOk());
    ASSERT_TRUE(original.saveImage(path_).isOk());

    MithriLog restored;
    ASSERT_TRUE(restored.loadImage(path_).isOk());
    ASSERT_TRUE(restored.ingestText("after load beta\n").isOk());
    EXPECT_TRUE(restored.flush().isOk());

    QueryResult r;
    ASSERT_TRUE(restored.run(mustParse("alpha | beta"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 2u);
    EXPECT_EQ(restored.lineCount(), 2u);
}

TEST_F(PersistenceTest, LoadRequiresFreshSystem)
{
    MithriLog original;
    ASSERT_TRUE(original.ingestText("x y z\n").isOk());
    ASSERT_TRUE(original.saveImage(path_).isOk());

    MithriLog dirty;
    ASSERT_TRUE(dirty.ingestText("already has data\n").isOk());
    EXPECT_TRUE(dirty.flush().isOk());
    EXPECT_EQ(dirty.loadImage(path_).code(),
              StatusCode::kInvalidArgument);
}

TEST_F(PersistenceTest, MissingFileFails)
{
    MithriLog system;
    EXPECT_FALSE(system.loadImage("/nonexistent/dir/image.bin").isOk());
}

TEST_F(PersistenceTest, TruncatedImageRejected)
{
    MithriLog original;
    ASSERT_TRUE(original.ingestText("some content here\n").isOk());
    ASSERT_TRUE(original.saveImage(path_).isOk());

    // Truncate the file to half.
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);

    MithriLog restored;
    EXPECT_EQ(restored.loadImage(path_).code(),
              StatusCode::kCorruptData);
}

TEST_F(PersistenceTest, ConfigMismatchRejected)
{
    MithriLog original;
    ASSERT_TRUE(original.ingestText("payload line\n").isOk());
    ASSERT_TRUE(original.saveImage(path_).isOk());

    MithriLogConfig other;
    other.index.hash_entries = 1u << 10;  // different table size
    MithriLog restored(other);
    EXPECT_EQ(restored.loadImage(path_).code(),
              StatusCode::kCorruptData);
}

} // namespace
} // namespace mithril::core
