/**
 * @file
 * Whole-system integration tests: MithriLog, ScanDb, and SplunkLite
 * must agree on match counts for the same corpus and queries (they
 * implement one semantics on three engines), and the FT-tree template
 * flow must work end to end — extract templates, compile them to the
 * accelerator, and retrieve the right lines.
 */
#include <gtest/gtest.h>

#include <memory>

#include "baseline/scan_db.h"
#include "baseline/splunk_lite.h"
#include "core/mithrilog.h"
#include "loggen/log_generator.h"
#include "query/parser.h"
#include "templates/ft_tree.h"

namespace mithril::core {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

class CrossEngineTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
        text_ = std::make_unique<std::string>(gen.generate(4 << 20));

        system_ = std::make_unique<MithriLog>();
        ASSERT_TRUE(system_->ingestText(*text_).isOk());
        EXPECT_TRUE(system_->flush().isOk());

        scan_db_ = std::make_unique<baseline::ScanDb>();
        scan_db_->ingest(*text_);

        splunk_ = std::make_unique<baseline::SplunkLite>();
        splunk_->ingest(*text_);
    }

    static void
    TearDownTestSuite()
    {
        splunk_.reset();
        scan_db_.reset();
        system_.reset();
        text_.reset();
    }

    static std::unique_ptr<std::string> text_;
    static std::unique_ptr<MithriLog> system_;
    static std::unique_ptr<baseline::ScanDb> scan_db_;
    static std::unique_ptr<baseline::SplunkLite> splunk_;
};

std::unique_ptr<std::string> CrossEngineTest::text_;
std::unique_ptr<MithriLog> CrossEngineTest::system_;
std::unique_ptr<baseline::ScanDb> CrossEngineTest::scan_db_;
std::unique_ptr<baseline::SplunkLite> CrossEngineTest::splunk_;

TEST_F(CrossEngineTest, AllEnginesAgreeOnCounts)
{
    const char *queries[] = {
        "RAS",
        "KERNEL & INFO",
        "FATAL & !INFO",
        "(ERROR & cache) | (WARNING & link)",
        "!KERNEL",
        "\"pbs_mom:\" | \"rts:\"",
    };
    for (const char *text_q : queries) {
        query::Query q = mustParse(text_q);

        QueryResult accel_result;
        ASSERT_TRUE(system_->run(q, &accel_result).isOk()) << text_q;
        baseline::ScanResult scan_result = scan_db_->runQuery(q);
        baseline::IndexedResult splunk_result = splunk_->runQuery(q);

        EXPECT_EQ(accel_result.matched_lines, scan_result.matched_lines)
            << text_q;
        EXPECT_EQ(accel_result.matched_lines,
                  splunk_result.matched_lines)
            << text_q;
    }
}

TEST_F(CrossEngineTest, IndexAndFullScanAgree)
{
    query::Query q = mustParse("ERROR & parity");
    QueryResult indexed, scanned;
    ASSERT_TRUE(system_->run(q, &indexed).isOk());
    std::vector<query::Query> batch{q};
    ASSERT_TRUE(system_->runFullScan(batch, &scanned).isOk());
    EXPECT_EQ(indexed.matched_lines, scanned.matched_lines);
    EXPECT_LE(indexed.pages_scanned, scanned.pages_scanned);
}

TEST_F(CrossEngineTest, ModeledAcceleratorBeatsPcieBound)
{
    // Figure 14's claim on a full scan: filter throughput exceeds the
    // 3.1 GB/s PCIe bound thanks to near-storage + compression.
    std::vector<query::Query> batch{mustParse("KERNEL & RAS")};
    QueryResult r;
    ASSERT_TRUE(system_->runFullScan(batch, &r).isOk());
    double eff = r.effectiveThroughput(system_->rawBytes());
    EXPECT_GT(eff, 3.1e9);
}

TEST_F(CrossEngineTest, TemplateQueriesEndToEnd)
{
    templates::FtTreeConfig cfg;
    cfg.template_min_support = 64;
    templates::FtTree tree = templates::FtTree::build(*text_, cfg);
    auto tpls = tree.extractTemplates();
    ASSERT_GT(tpls.size(), 4u);

    // Pick up to 8 templates and run them as one batched union query.
    size_t n = std::min<size_t>(8, tpls.size());
    query::Query joined =
        templates::templatesToQuery(std::span(tpls.data(), n));
    QueryResult r;
    ASSERT_TRUE(system_->run(joined, &r).isOk());
    // Every selected template had support, so lines must come back.
    EXPECT_GT(r.matched_lines, 0u);

    // Counts agree with the software matcher on the raw text.
    query::SoftwareMatcher matcher(joined);
    EXPECT_EQ(r.matched_lines, matcher.filterLines(*text_).size());
}

TEST_F(CrossEngineTest, ConstantThroughputAcrossQueryComplexity)
{
    // The headline behaviour of Figure 15: modeled MithriLog
    // throughput barely changes between 1 and 8 batched queries, while
    // ScanDb (CPU-bound) slows down.
    std::vector<query::Query> one{mustParse("KERNEL & ERROR")};
    std::vector<query::Query> eight;
    const char *bases[] = {"KERNEL", "ERROR", "INFO", "WARNING",
                           "FATAL", "cache", "link", "daemon"};
    for (const char *b : bases) {
        eight.push_back(mustParse(std::string(b) + " & RAS"));
    }

    QueryResult r1, r8;
    ASSERT_TRUE(system_->runFullScan(one, &r1).isOk());
    ASSERT_TRUE(system_->runFullScan(eight, &r8).isOk());
    double t1 = r1.effectiveThroughput(system_->rawBytes());
    double t8 = r8.effectiveThroughput(system_->rawBytes());
    EXPECT_NEAR(t8 / t1, 1.0, 0.05);
}

} // namespace
} // namespace mithril::core
