/**
 * @file
 * Storage-lifecycle contract at the MithriLog API level (DESIGN.md
 * §14) — the in-process counterpart of `crash_matrix.sh --checkpoint`.
 * checkpoint() collapses the journal chain into a snapshot and runs
 * the segment cleaner; the properties pinned here:
 *
 *   bounded replay:  after a checkpoint, a mount replays the snapshot
 *                    plus only the post-checkpoint chain tail — the
 *                    tail strictly drops across checkpoints instead of
 *                    growing with the whole commit history;
 *   preservation:    committed lines, query results, and the durable
 *                    ack point are bit-identical across any number of
 *                    checkpoints (including back-to-back ones);
 *   crash safety:    a power cut anywhere inside the protocol loses
 *                    nothing acknowledged — recovery lands on the pre-
 *                    or post-checkpoint superblock, never a mix;
 *   reclamation:     drained segments return to the allocator, so the
 *                    physical footprint does not grow monotonically;
 *   edges:           empty store, sealed store, and image round-trips.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/mithrilog.h"
#include "fault/fault_plan.h"
#include "query/parser.h"

namespace mithril::core {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

/** Same corpus shape as the crash-recovery suite: a common token plus
 *  a unique seqN per line, so prefix boundaries pin exactly. */
std::vector<std::string>
corpus(size_t lines)
{
    std::vector<std::string> out;
    out.reserve(lines);
    for (size_t i = 0; i < lines; ++i) {
        out.push_back("ckpt payload seq" + std::to_string(i) +
                      " filler text keeps pages turning over quickly");
    }
    return out;
}

void
ingestAll(MithriLog *log, const std::vector<std::string> &lines)
{
    for (const std::string &line : lines) {
        ASSERT_TRUE(log->ingestLine(line).isOk());
    }
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "mithrilog_ckpt_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".img";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(CheckpointTest, ReplayTailStrictlyDropsAcrossCheckpoints)
{
    std::vector<std::string> lines = corpus(900);
    MithriLog log;
    ingestAll(&log, lines);
    ASSERT_TRUE(log.flush().isOk());

    // K explicit checkpoints with more ingest between them: each one
    // must collapse the accumulated chain back below its own length.
    uint64_t total_records = 0;
    for (int k = 0; k < 3; ++k) {
        uint64_t before = log.journalChainRecords();
        ASSERT_GT(before, 0u);
        ASSERT_TRUE(log.checkpoint().isOk());
        uint64_t after = log.journalChainRecords();
        // The fresh chain holds only this pass's migrate records —
        // strictly fewer than the page commits it replaced.
        EXPECT_LT(after, before) << "checkpoint " << k;
        // The snapshot now carries every committed page.
        EXPECT_EQ(log.journalSnapshotRecords(), log.dataPageCount());
        total_records = log.journalSnapshotRecords() + after;
        ingestAll(&log, lines);
        ASSERT_TRUE(log.flush().isOk());
    }
    EXPECT_EQ(log.checkpoints(), 3u);

    // Mount the device: replay must walk snapshot + tail, and the
    // tail must be the post-checkpoint records only, not the 4x-grown
    // history (the corpus went in once up front plus once per
    // checkpoint round). total_records was measured at the LAST
    // checkpoint; the tail since then is what the final round added.
    ASSERT_TRUE(log.seal().isOk());
    ASSERT_TRUE(log.saveDeviceImage(path_).isOk());
    MithriLog mounted;
    ASSERT_TRUE(mounted.recover(path_).isOk());
    EXPECT_EQ(mounted.lineCount(), lines.size() * 4);
    EXPECT_GT(mounted.recoveredSnapshotRecords(), 0u);
    // Tail bound: one round's worth of page commits + seal, with
    // slack for migrate records — far below the full 4-round history.
    uint64_t one_life_pages = mounted.dataPageCount() / 4;
    EXPECT_LE(mounted.recoveredChainRecords(), one_life_pages + 16)
        << "replay tail not bounded by the post-checkpoint delta";
    EXPECT_LT(mounted.recoveredChainRecords(),
              mounted.dataPageCount());
    // The replay_records gauge mirrors what the mount walked.
    EXPECT_EQ(static_cast<uint64_t>(
                  mounted.metrics()
                      .gauge("recovery.replay_records")
                      .value()),
              mounted.recoveredSnapshotRecords() +
                  mounted.recoveredChainRecords());
    (void)total_records;

    QueryResult r;
    ASSERT_TRUE(mounted.run(mustParse("payload"), &r).isOk());
    EXPECT_EQ(r.matched_lines, lines.size() * 4);
}

TEST_F(CheckpointTest, DoubleCheckpointIsIdempotent)
{
    std::vector<std::string> lines = corpus(400);
    MithriLog log;
    ingestAll(&log, lines);
    ASSERT_TRUE(log.flush().isOk());

    ASSERT_TRUE(log.checkpoint().isOk());
    uint64_t pages = log.dataPageCount();
    uint64_t snapshot = log.journalSnapshotRecords();
    // Nothing new was committed: the second checkpoint rewrites the
    // same snapshot and leaves an empty chain (the first pass already
    // cleaned, so no migrate records either).
    ASSERT_TRUE(log.checkpoint().isOk());
    EXPECT_EQ(log.dataPageCount(), pages);
    EXPECT_EQ(log.journalSnapshotRecords(), snapshot);
    EXPECT_EQ(log.journalChainRecords(), 0u);
    EXPECT_EQ(log.checkpoints(), 2u);

    QueryResult r;
    ASSERT_TRUE(log.run(mustParse("payload"), &r).isOk());
    EXPECT_EQ(r.matched_lines, lines.size());
}

TEST_F(CheckpointTest, EmptyStoreCheckpointIsANoOp)
{
    MithriLog log;
    // Nothing ever committed: no chain to truncate — ok, not an error.
    EXPECT_TRUE(log.checkpoint().isOk());
    EXPECT_EQ(log.checkpoints(), 0u);
    EXPECT_EQ(log.journalSnapshotRecords(), 0u);
    // Pending-but-unflushed lines get committed by the checkpoint's
    // own flush, then truncated into the snapshot.
    ASSERT_TRUE(log.ingestLine("ckpt payload seq0 first line").isOk());
    EXPECT_TRUE(log.checkpoint().isOk());
    EXPECT_EQ(log.checkpoints(), 1u);
    EXPECT_EQ(log.durableLineCount(), 1u);
    EXPECT_EQ(log.journalSnapshotRecords(), log.dataPageCount());
}

TEST_F(CheckpointTest, SealedStoreCheckpointKeepsTheSeal)
{
    std::vector<std::string> lines = corpus(200);
    MithriLog log;
    ingestAll(&log, lines);
    ASSERT_TRUE(log.seal().isOk());

    // Maintenance on an archived store: allowed, and the seal is
    // terminal across it (the superblock flag survives truncation).
    ASSERT_TRUE(log.checkpoint().isOk());
    EXPECT_TRUE(log.sealed());
    EXPECT_EQ(log.ingestLine("late").code(),
              StatusCode::kInvalidArgument);

    ASSERT_TRUE(log.saveDeviceImage(path_).isOk());
    MithriLog mounted;
    ASSERT_TRUE(mounted.recover(path_).isOk());
    EXPECT_TRUE(mounted.sealed());
    EXPECT_EQ(mounted.lineCount(), lines.size());
    EXPECT_GT(mounted.recoveredSnapshotRecords(), 0u);
    // Sealed + checkpointed is terminal: the journal cannot reopen.
    EXPECT_FALSE(mounted.reopen().isOk());
}

TEST_F(CheckpointTest, RecoveredMountRefusesCheckpoint)
{
    std::vector<std::string> lines = corpus(100);
    MithriLog log;
    ingestAll(&log, lines);
    ASSERT_TRUE(log.flush().isOk());
    ASSERT_TRUE(log.saveDeviceImage(path_).isOk());

    MithriLog mounted;
    ASSERT_TRUE(mounted.recover(path_).isOk());
    // Read-only until reopen(): the replay cursor is not live.
    EXPECT_EQ(mounted.checkpoint().code(),
              StatusCode::kFailedPrecondition);
    ASSERT_TRUE(mounted.reopen().isOk());
    EXPECT_TRUE(mounted.checkpoint().isOk());
    EXPECT_EQ(mounted.durableLineCount(), lines.size());
}

TEST_F(CheckpointTest, AutoPolicyCheckpointsEveryNPages)
{
    MithriLogConfig config;
    config.checkpoint_every_pages = 2;
    MithriLog log(config);
    ingestAll(&log, corpus(900));
    ASSERT_TRUE(log.flush().isOk());
    // ~N/2 policy firings, and the chain tail stays within one policy
    // window (+ slack for migrate records) instead of one per commit.
    EXPECT_GE(log.checkpoints(), 3u);
    EXPECT_EQ(log.checkpoints(), log.dataPageCount() / 2);
    EXPECT_LE(log.journalChainRecords(), 2 + 16u);

    QueryResult r;
    ASSERT_TRUE(log.run(mustParse("payload"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 900u);
}

TEST_F(CheckpointTest, SegmentCleanerReclaimsDrainedSegments)
{
    // Repeated checkpoints strand old chain/snapshot pages across
    // segments; the cleaner must hand whole segments back instead of
    // letting the physical footprint grow monotonically. The corpus
    // must span enough segments for cold ones to form (a handful of
    // pages never drains below the half-occupancy threshold).
    std::vector<std::string> lines = corpus(7000);
    MithriLogConfig config;
    config.checkpoint_every_pages = 3;
    MithriLog log(config);
    ingestAll(&log, lines);
    ASSERT_TRUE(log.flush().isOk());
    EXPECT_GT(log.ssd().store().segmentsFreed(), 0u)
        << "no segment was ever reclaimed across "
        << log.checkpoints() << " checkpoints";
    EXPECT_GT(log.metrics().counter("storage.migrations").value(), 0u);

    QueryResult r;
    ASSERT_TRUE(log.run(mustParse("payload"), &r).isOk());
    EXPECT_EQ(r.matched_lines, lines.size());
}

TEST_F(CheckpointTest, HostImageRoundTripsACheckpointedStore)
{
    std::vector<std::string> lines = corpus(500);
    MithriLog log;
    ingestAll(&log, lines);
    ASSERT_TRUE(log.flush().isOk());
    ASSERT_TRUE(log.checkpoint().isOk());
    uint64_t snapshot = log.journalSnapshotRecords();
    ASSERT_TRUE(log.saveImage(path_).isOk());

    // The v5 image carries the freed-slot list and the journal cursor:
    // the reloaded store knows its snapshot and can checkpoint again.
    MithriLog loaded;
    ASSERT_TRUE(loaded.loadImage(path_).isOk());
    EXPECT_EQ(loaded.lineCount(), lines.size());
    EXPECT_EQ(loaded.journalSnapshotRecords(), snapshot);
    EXPECT_EQ(loaded.checkpoints(), 1u);
    QueryResult r;
    ASSERT_TRUE(loaded.run(mustParse("payload"), &r).isOk());
    EXPECT_EQ(r.matched_lines, lines.size());

    ingestAll(&loaded, lines);
    ASSERT_TRUE(loaded.checkpoint().isOk());
    EXPECT_EQ(loaded.durableLineCount(), lines.size() * 2);
}

TEST_F(CheckpointTest, CutInsideCheckpointLosesNothingAcknowledged)
{
    // Sweep cut ordinals across an ingest whose per-page checkpoints
    // dominate the write stream: most cuts land inside a snapshot
    // write, an epoch bump, or a migration. Whatever the landing spot,
    // recovery must hold the durability + prefix contract.
    std::vector<std::string> lines = corpus(300);
    bool any_fired = false;
    for (uint64_t cut = 1; cut <= 41; cut += 4) {
        fault::FaultPlanConfig fc;
        fc.seed = 1;
        fc.power_cut_after_writes = cut;
        fault::FaultPlan plan(fc);

        MithriLogConfig config;
        config.checkpoint_every_pages = 1;
        MithriLog log(config);
        log.ssd().attachFaultPlan(&plan);
        Status st = Status::ok();
        for (const std::string &line : lines) {
            st = log.ingestLine(line);
            if (!st.isOk()) {
                break;
            }
        }
        if (st.isOk()) {
            st = log.flush();
        }
        if (st.isOk()) {
            continue; // cut point past this run's last program
        }
        ASSERT_EQ(st.code(), StatusCode::kUnavailable)
            << st.toString();
        any_fired = true;
        uint64_t acknowledged = log.durableLineCount();
        ASSERT_TRUE(log.saveDeviceImage(path_).isOk());

        MithriLog mounted;
        ASSERT_TRUE(mounted.recover(path_).isOk()) << "cut=" << cut;
        uint64_t recovered = mounted.lineCount();
        EXPECT_GE(recovered, acknowledged) << "cut=" << cut;
        EXPECT_LE(recovered, lines.size()) << "cut=" << cut;
        // Prefix boundary pins exactly: seq(R-1) in, seq(R) out.
        if (recovered > 0) {
            QueryResult last;
            std::string q = "seq" + std::to_string(recovered - 1);
            ASSERT_TRUE(mounted.run(mustParse(q), &last).isOk());
            EXPECT_EQ(last.matched_lines, 1u) << q << " cut=" << cut;
        }
        if (recovered < lines.size()) {
            QueryResult past;
            std::string q = "seq" + std::to_string(recovered);
            ASSERT_TRUE(mounted.run(mustParse(q), &past).isOk());
            EXPECT_EQ(past.matched_lines, 0u) << q << " cut=" << cut;
        }
    }
    EXPECT_TRUE(any_fired);
}

} // namespace
} // namespace mithril::core
