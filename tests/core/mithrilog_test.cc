#include "core/mithrilog.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/text.h"
#include "loggen/log_generator.h"
#include "query/matcher.h"
#include "query/parser.h"

namespace mithril::core {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

std::string
smallCorpus()
{
    std::string text;
    for (int i = 0; i < 3000; ++i) {
        if (i % 3 == 0) {
            text += "RAS KERNEL INFO instruction cache parity error "
                    "corrected seq" + std::to_string(i) + "\n";
        } else if (i % 3 == 1) {
            text += "RAS KERNEL FATAL data TLB error interrupt seq" +
                    std::to_string(i) + "\n";
        } else {
            text += "RAS APP FATAL ciod error reading message prefix "
                    "seq" + std::to_string(i) + "\n";
        }
    }
    return text;
}

TEST(MithriLogTest, IngestAccountsLinesAndPages)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    EXPECT_EQ(system.lineCount(), 3000u);
    EXPECT_GT(system.dataPageCount(), 0u);
    EXPECT_GT(system.compressionRatio(), 1.5);
}

TEST(MithriLogTest, QueryCountsMatchCorpusStructure)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());

    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("KERNEL & INFO"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 1000u);
    EXPECT_FALSE(r.used_fallback);

    ASSERT_TRUE(system.run(mustParse("KERNEL & !FATAL"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 1000u);

    ASSERT_TRUE(system.run(mustParse("FATAL"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 2000u);
}

TEST(MithriLogTest, IndexPrunesPages)
{
    MithriLog system;
    std::string text = smallCorpus();
    text += "needle UNIQUETOKEN in haystack\n";
    text += smallCorpus();
    ASSERT_TRUE(system.ingestText(text).isOk());
    EXPECT_TRUE(system.flush().isOk());

    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("UNIQUETOKEN"), &r).isOk());
    EXPECT_EQ(r.matched_lines, 1u);
    // The single-token query must touch far fewer pages than exist.
    EXPECT_LT(r.pages_scanned, r.pages_total / 2);
    EXPECT_GT(r.index_time.ps(), 0u);
}

TEST(MithriLogTest, QueryTimeBreakdownIsConsistent)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("KERNEL"), &r).isOk());
    EXPECT_GE(r.total_time.ps(),
              std::max(r.storage_time.ps(), r.compute_time.ps()));
    EXPECT_GT(r.effectiveThroughput(system.rawBytes()), 0.0);
}

TEST(MithriLogTest, FullScanTouchesAllPages)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    std::vector<query::Query> queries{mustParse("INFO")};
    QueryResult r;
    ASSERT_TRUE(system.runFullScan(queries, &r).isOk());
    EXPECT_EQ(r.pages_scanned, r.pages_total);
    EXPECT_EQ(r.matched_lines, 1000u);
}

TEST(MithriLogTest, BatchedQueriesShareOnePass)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    std::vector<query::Query> queries{mustParse("INFO"),
                                      mustParse("APP & FATAL")};
    QueryResult r;
    ASSERT_TRUE(system.runBatch(queries, &r).isOk());
    ASSERT_EQ(r.matched_per_query.size(), 2u);
    EXPECT_EQ(r.matched_per_query[0], 1000u);
    EXPECT_EQ(r.matched_per_query[1], 1000u);
    EXPECT_EQ(r.matched_lines, 2000u);
}

TEST(MithriLogTest, FallbackOnNonOffloadableQuery)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    // 9 union sets exceed the 8 flag pairs -> software fallback.
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse(
        "INFO | FATAL | APP | KERNEL | cache | TLB | ciod | parity | "
        "interrupt"), &r).isOk());
    EXPECT_TRUE(r.used_fallback);
    EXPECT_GT(r.matched_lines, 0u);
}

TEST(MithriLogTest, TextQueryInterface)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText("alpha beta\ngamma delta\n").isOk());
    EXPECT_TRUE(system.flush().isOk());
    QueryResult r;
    ASSERT_TRUE(system.run("alpha & beta", &r).isOk());
    EXPECT_EQ(r.matched_lines, 1u);
    EXPECT_FALSE(system.run("((", &r).isOk());
}

TEST(MithriLogTest, LongLinesTruncatedWithCounter)
{
    MithriLog system;
    std::string giant(10000, 'x');
    ASSERT_TRUE(system.ingestLine(giant).isOk());
    EXPECT_TRUE(system.flush().isOk());
    EXPECT_EQ(system.truncatedLines(), 1u);
    EXPECT_EQ(system.lineCount(), 1u);
    // The same count is visible in the unified metric namespace.
    EXPECT_EQ(system.metrics().counterValue("core.lines_truncated"),
              1u);
    EXPECT_EQ(system.metrics().counterValue("core.lines_ingested"), 1u);
}

TEST(MithriLogTest, LongLineRejectedWhenTruncationDisabled)
{
    MithriLogConfig cfg;
    cfg.truncate_long_lines = false;
    MithriLog system(cfg);
    std::string giant(10000, 'x');
    EXPECT_FALSE(system.ingestLine(giant).isOk());
}

TEST(MithriLogTest, NoIndexConfigScansEverything)
{
    MithriLogConfig cfg;
    cfg.use_index = false;
    MithriLog system(cfg);
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("INFO"), &r).isOk());
    EXPECT_EQ(r.pages_scanned, r.pages_total);
    EXPECT_EQ(r.index_time.ps(), 0u);
}

TEST(MithriLogTest, EmptyBatchRejected)
{
    MithriLog system;
    QueryResult r;
    EXPECT_FALSE(system.runBatch({}, &r).isOk());
}

TEST(MithriLogTest, PlannerSkipsTraversalForCommonTokens)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());

    // "RAS" occurs on every line: entry counters predict no pruning,
    // so the planner goes straight to a full scan (no traversal time).
    QueryResult common;
    ASSERT_TRUE(system.run(mustParse("RAS"), &common).isOk());
    EXPECT_TRUE(common.planned_full_scan);
    EXPECT_EQ(common.index_time.ps(), 0u);
    EXPECT_EQ(common.pages_scanned, common.pages_total);
    EXPECT_EQ(common.matched_lines, 3000u);

    // A selective token goes through the index as usual.
    QueryResult rare;
    ASSERT_TRUE(system.run(mustParse("seq42"), &rare).isOk());
    EXPECT_FALSE(rare.planned_full_scan);
    EXPECT_LT(rare.pages_scanned, rare.pages_total);
    EXPECT_EQ(rare.matched_lines, 1u);
}

TEST(MithriLogTest, PlannerCanBeDisabled)
{
    MithriLogConfig cfg;
    cfg.planner_scan_threshold = 1.0;
    MithriLog system(cfg);
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("RAS"), &r).isOk());
    EXPECT_FALSE(r.planned_full_scan);
    EXPECT_GT(r.index_time.ps(), 0u);
    EXPECT_EQ(r.matched_lines, 3000u);
}

TEST(MithriLogTest, TimeRangeQueryBoundsPages)
{
    // A realistic corpus desynchronizes index leaf flushes (tokens of
    // different page frequencies), which is what gives the snapshot
    // log its granularity.
    MithriLogConfig cfg;
    cfg.index.snapshot_leaf_interval = 2;
    MithriLog system(cfg);
    loggen::LogGenerator gen(loggen::hpc4Datasets()[1]);
    std::string text = gen.generate(4 << 20);
    std::vector<std::string_view> lines = splitLines(text);
    ASSERT_TRUE(system.ingestText(text).isOk());
    EXPECT_TRUE(system.flush().isOk());
    ASSERT_GT(system.index().snapshots().size(), 2u);

    query::Query q = mustParse("error | failed");
    uint64_t t0 = lines.size() / 4;
    uint64_t t1 = lines.size() / 2;

    QueryResult full, middle;
    ASSERT_TRUE(system.run(q, &full).isOk());
    ASSERT_TRUE(system.runTimeRange(q, t0, t1, &middle).isOk());

    // Bounded query touches fewer pages and returns fewer lines, but
    // never loses a match inside the window (coarseness only ever
    // over-approximates).
    EXPECT_LT(middle.pages_scanned, full.pages_scanned);
    EXPECT_LE(middle.matched_lines, full.matched_lines);

    query::SoftwareMatcher matcher(q);
    uint64_t in_window = 0;
    for (uint64_t j = t0; j < t1 && j < lines.size(); ++j) {
        if (matcher.matches(lines[j])) {
            ++in_window;
        }
    }
    EXPECT_GT(in_window, 0u);
    EXPECT_GE(middle.matched_lines, in_window);
}

TEST(MithriLogTest, TimeRangeWholeRangeEqualsFullQuery)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    query::Query q = mustParse("FATAL");
    QueryResult full, ranged;
    ASSERT_TRUE(system.run(q, &full).isOk());
    ASSERT_TRUE(system.runTimeRange(q, 0, ~0ull, &ranged).isOk());
    EXPECT_EQ(full.matched_lines, ranged.matched_lines);
}

TEST(MithriLogTest, KeptLinesAreRealLines)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText("keep me now\ndrop me\n").isOk());
    EXPECT_TRUE(system.flush().isOk());
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("keep"), &r).isOk());
    ASSERT_EQ(r.lines.size(), 1u);
    EXPECT_EQ(r.lines[0].text, "keep me now");
}

TEST(MithriLogTest, QueryBreakdownMatchesScalars)
{
    MithriLog system;
    std::string text = smallCorpus();
    text += "needle UNIQUETOKEN in haystack\n";
    text += smallCorpus();
    ASSERT_TRUE(system.ingestText(text).isOk());
    EXPECT_TRUE(system.flush().isOk());

    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("UNIQUETOKEN"), &r).isOk());
    const QueryBreakdown &b = r.breakdown;
    EXPECT_EQ(b.total_time.ps(), r.total_time.ps());
    EXPECT_EQ(b.index_time.ps(), r.index_time.ps());
    EXPECT_EQ(b.pages_scanned, r.pages_scanned);
    EXPECT_EQ(b.matched_lines, r.matched_lines);
    EXPECT_FALSE(b.used_fallback);
    EXPECT_GT(b.wall_seconds, 0.0);
    // Index path: candidates were nominated and the page-pruning
    // account closes (candidates = with-matches + false positives).
    EXPECT_EQ(b.candidate_pages, b.pages_scanned);
    EXPECT_GE(b.pages_with_matches, 1u);
    EXPECT_EQ(b.false_positive_pages,
              b.pages_scanned - b.pages_with_matches);

    std::string json = b.toJson();
    EXPECT_NE(json.find("\"total_ps\""), std::string::npos);
    EXPECT_NE(json.find("\"false_positive_pages\""), std::string::npos);
}

TEST(MithriLogTest, QueryDatapathFeedsMetricsAndSpans)
{
    MithriLog system;
    ASSERT_TRUE(system.ingestText(smallCorpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());
    QueryResult r;
    ASSERT_TRUE(system.run(mustParse("seq42"), &r).isOk());

    const obs::MetricsRegistry &m = system.metrics();
    EXPECT_EQ(m.counterValue("core.queries"), 1u);
    EXPECT_GT(m.counterValue("ssd.pages_read"), 0u);
    EXPECT_GT(m.counterValue("index.candidate_pages"), 0u);
    EXPECT_GT(m.counterValue("accel.busy_cycles"), 0u);
    EXPECT_GT(m.counterValue("lzah.bytes_in"), 0u);
    EXPECT_EQ(m.counterValue("core.lines_ingested"), 3000u);

    // The span buffer covers the datapath phases, nested under the
    // parent query span, with modeled durations attached.
    bool saw_query = false, saw_lookup = false, saw_stream = false,
         saw_filter = false;
    for (const obs::TraceEvent &e : system.tracer().events()) {
        if (e.name == "query") {
            saw_query = true;
            EXPECT_EQ(e.depth, 0u);
            EXPECT_TRUE(e.has_sim);
            EXPECT_EQ(e.sim_dur_ps, r.total_time.ps());
        } else if (e.name == "query.index_lookup") {
            saw_lookup = true;
            EXPECT_EQ(e.depth, 1u);
        } else if (e.name == "query.page_stream") {
            saw_stream = true;
            EXPECT_EQ(e.sim_dur_ps, r.storage_time.ps());
        } else if (e.name == "query.filter") {
            saw_filter = true;
            EXPECT_EQ(e.sim_dur_ps, r.compute_time.ps());
        }
    }
    EXPECT_TRUE(saw_query);
    EXPECT_TRUE(saw_lookup);
    EXPECT_TRUE(saw_stream);
    EXPECT_TRUE(saw_filter);
}

TEST(MithriLogTest, SimDomainTelemetryIsDeterministic)
{
    auto run = [] {
        MithriLog system;
        EXPECT_TRUE(system.ingestText(smallCorpus()).isOk());
        EXPECT_TRUE(system.flush().isOk());
        QueryResult r;
        EXPECT_TRUE(system.run(mustParse("KERNEL & INFO"), &r).isOk());
        obs::MetricsSnapshot snap = system.metrics().snapshot();
        std::vector<std::pair<uint64_t, uint64_t>> sim;
        for (const obs::TraceEvent &e : system.tracer().events()) {
            if (e.has_sim) {
                sim.emplace_back(e.sim_start_ps, e.sim_dur_ps);
            }
        }
        return std::make_pair(snap.counters, sim);
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(MithriLogTest, ExternalRegistryIsShared)
{
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    MithriLogConfig cfg;
    cfg.metrics = &registry;
    cfg.tracer = &tracer;
    MithriLog system(cfg);
    ASSERT_TRUE(system.ingestText("alpha beta\n").isOk());
    EXPECT_TRUE(system.flush().isOk());
    EXPECT_EQ(&system.metrics(), &registry);
    EXPECT_EQ(&system.tracer(), &tracer);
    EXPECT_EQ(registry.counterValue("core.lines_ingested"), 1u);
}

} // namespace
} // namespace mithril::core
