// TSA fixture (WILL_FAIL): calling a MITHRIL_REQUIRES method without
// the lock held must be a -Wthread-safety error — the exact mistake
// the MetricsRegistry findOrCreateLocked() contract guards against.
#include "common/mutex.h"

class Registry
{
  public:
    int
    lookupLocked() MITHRIL_REQUIRES(mu_)
    {
        return entries_;
    }

    int
    lookup()
    {
        return lookupLocked();  // error: mu_ not held
    }

  private:
    mithril::Mutex mu_;
    int entries_ MITHRIL_GUARDED_BY(mu_) = 0;
};

int
main()
{
    Registry r;
    return r.lookup();
}
