// TSA fixture (WILL_FAIL): acquiring the same mutex twice in one
// scope must be a -Wthread-safety error (for std::mutex it is
// undefined behavior at runtime; the analysis catches it at compile
// time).
#include "common/mutex.h"

int
doubleAcquire(mithril::Mutex &mu, int value)
{
    mithril::MutexLock outer(mu);
    mithril::MutexLock inner(mu);  // error: mu already held
    return value;
}

int
main()
{
    mithril::Mutex mu;
    return doubleAcquire(mu, 0);
}
