// TSA fixture (WILL_FAIL): writing a MITHRIL_GUARDED_BY field without
// holding its mutex must be a -Wthread-safety error. Compiles clean
// under gcc (the annotations expand to nothing) — the lint_tsa gate
// skips on non-clang boxes, so this fixture is only ever compiled by
// clang.
#include "common/mutex.h"

class Account
{
  public:
    void
    deposit(int amount)
    {
        balance_ += amount;  // error: write without holding mu_
    }

  private:
    mithril::Mutex mu_;
    int balance_ MITHRIL_GUARDED_BY(mu_) = 0;
};

int
main()
{
    Account a;
    a.deposit(1);
    return 0;
}
