#include "storage/ssd_model.h"

#include <gtest/gtest.h>

namespace mithril::storage {
namespace {

TEST(SsdModelTest, BatchReadMovesData)
{
    SsdModel ssd;
    PageId a = ssd.allocate();
    PageId b = ssd.allocate();
    std::vector<uint8_t> ones(kPageSize, 1);
    std::vector<uint8_t> twos(kPageSize, 2);
    ssd.writePage(a, ones);
    ssd.writePage(b, twos);

    std::vector<uint8_t> out;
    std::vector<PageId> ids{a, b};
    ASSERT_TRUE(ssd.readBatch(ids, Link::kInternal, &out).isOk());
    ASSERT_EQ(out.size(), 2 * kPageSize);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[kPageSize], 2);
}

TEST(SsdModelTest, LargeBatchIsBandwidthBound)
{
    SsdModel ssd;
    // 100k pages at 4.8 GB/s -> ~85 ms; latency contribution is tiny.
    SimTime t = ssd.timeBatchRead(100000, Link::kInternal);
    double expected = 100000.0 * kPageSize / 4.8e9;
    EXPECT_NEAR(t.toSeconds(), expected, expected * 0.2);
}

TEST(SsdModelTest, InternalLinkIsFasterThanExternal)
{
    SsdModel ssd;
    SimTime internal = ssd.timeBatchRead(50000, Link::kInternal);
    SimTime external = ssd.timeBatchRead(50000, Link::kExternal);
    EXPECT_LT(internal.ps(), external.ps());
    // Ratio should track the 4.8 / 3.1 bandwidth ratio.
    double ratio = static_cast<double>(external.ps()) / internal.ps();
    EXPECT_NEAR(ratio, 4.8 / 3.1, 0.2);
}

TEST(SsdModelTest, ChainedReadsAreLatencyBound)
{
    SsdModel ssd;
    // 100 dependent hops at 100 us each: >= 10 ms regardless of size.
    SimTime t = ssd.timeChainRead(100, 0, Link::kInternal);
    EXPECT_GE(t.toSeconds(), 100 * 100e-6 * 0.99);
}

TEST(SsdModelTest, ChainWithFanoutCoversLeafTraffic)
{
    SsdModel ssd;
    SimTime chain_only = ssd.timeChainRead(10, 0, Link::kInternal);
    SimTime with_fanout = ssd.timeChainRead(10, 256, Link::kInternal);
    EXPECT_GE(with_fanout.ps(), chain_only.ps());
}

TEST(SsdModelTest, MeteredReadsAdvanceClockAndStats)
{
    SsdModel ssd;
    PageId a = ssd.allocate();
    std::vector<uint8_t> data(kPageSize, 7);
    ssd.writePage(a, data);
    ssd.resetClock();

    std::vector<uint8_t> out;
    std::vector<PageId> ids{a};
    ASSERT_TRUE(ssd.readBatch(ids, Link::kExternal, &out).isOk());
    EXPECT_GT(ssd.elapsed().ps(), 0u);
    EXPECT_EQ(ssd.stats().get("pages_read"), 1u);
    EXPECT_EQ(ssd.stats().get("bytes_read"), kPageSize);

    std::vector<uint8_t> chained;
    ASSERT_TRUE(ssd.readChained(a, Link::kExternal, &chained).isOk());
    EXPECT_EQ(chained[0], 7);
    EXPECT_EQ(ssd.stats().get("chained_reads"), 1u);
}

TEST(SsdModelTest, ResetClockZeroesElapsedOnly)
{
    SsdModel ssd;
    PageId a = ssd.allocate();
    std::vector<uint8_t> data(16, 1);
    ssd.writePage(a, data);
    EXPECT_GT(ssd.elapsed().ps(), 0u);
    ssd.resetClock();
    EXPECT_EQ(ssd.elapsed().ps(), 0u);
    EXPECT_EQ(ssd.stats().get("pages_written"), 1u);
}

TEST(SsdModelTest, ComparisonConfigHasSingleFastLink)
{
    SsdConfig cfg = comparisonSsdConfig();
    EXPECT_DOUBLE_EQ(cfg.internal_bw_bps, cfg.external_bw_bps);
    EXPECT_GT(cfg.internal_bw_bps, 4.8e9);
}

} // namespace
} // namespace mithril::storage
