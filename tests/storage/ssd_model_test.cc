#include "storage/ssd_model.h"

#include <gtest/gtest.h>

namespace mithril::storage {
namespace {

TEST(SsdModelTest, BatchReadMovesData)
{
    SsdModel ssd;
    PageId a = ssd.allocate();
    PageId b = ssd.allocate();
    std::vector<uint8_t> ones(kPageSize, 1);
    std::vector<uint8_t> twos(kPageSize, 2);
    ASSERT_TRUE(ssd.writePage(a, ones).isOk());
    ASSERT_TRUE(ssd.writePage(b, twos).isOk());

    std::vector<uint8_t> out;
    std::vector<PageId> ids{a, b};
    ASSERT_TRUE(ssd.readBatch(ids, Link::kInternal, &out).isOk());
    ASSERT_EQ(out.size(), 2 * kPageSize);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[kPageSize], 2);
}

TEST(SsdModelTest, LargeBatchIsBandwidthBound)
{
    SsdModel ssd;
    // 100k pages at 4.8 GB/s -> ~85 ms; latency contribution is tiny.
    SimTime t = ssd.timeBatchRead(100000, Link::kInternal);
    double expected = 100000.0 * kPageSize / 4.8e9;
    EXPECT_NEAR(t.toSeconds(), expected, expected * 0.2);
}

TEST(SsdModelTest, InternalLinkIsFasterThanExternal)
{
    SsdModel ssd;
    SimTime internal = ssd.timeBatchRead(50000, Link::kInternal);
    SimTime external = ssd.timeBatchRead(50000, Link::kExternal);
    EXPECT_LT(internal.ps(), external.ps());
    // Ratio should track the 4.8 / 3.1 bandwidth ratio.
    double ratio = static_cast<double>(external.ps()) / internal.ps();
    EXPECT_NEAR(ratio, 4.8 / 3.1, 0.2);
}

TEST(SsdModelTest, ChainedReadsAreLatencyBound)
{
    SsdModel ssd;
    // 100 dependent hops at 100 us each: >= 10 ms regardless of size.
    SimTime t = ssd.timeChainRead(100, 0, Link::kInternal);
    EXPECT_GE(t.toSeconds(), 100 * 100e-6 * 0.99);
}

TEST(SsdModelTest, ChainWithFanoutCoversLeafTraffic)
{
    SsdModel ssd;
    SimTime chain_only = ssd.timeChainRead(10, 0, Link::kInternal);
    SimTime with_fanout = ssd.timeChainRead(10, 256, Link::kInternal);
    EXPECT_GE(with_fanout.ps(), chain_only.ps());
}

TEST(SsdModelTest, MeteredReadsAdvanceClockAndStats)
{
    SsdModel ssd;
    PageId a = ssd.allocate();
    std::vector<uint8_t> data(kPageSize, 7);
    ASSERT_TRUE(ssd.writePage(a, data).isOk());
    ssd.resetClock();

    std::vector<uint8_t> out;
    std::vector<PageId> ids{a};
    ASSERT_TRUE(ssd.readBatch(ids, Link::kExternal, &out).isOk());
    EXPECT_GT(ssd.elapsed().ps(), 0u);
    EXPECT_EQ(ssd.stats().get("pages_read"), 1u);
    EXPECT_EQ(ssd.stats().get("bytes_read"), kPageSize);

    std::vector<uint8_t> chained;
    ASSERT_TRUE(ssd.readChained(a, Link::kExternal, &chained).isOk());
    EXPECT_EQ(chained[0], 7);
    EXPECT_EQ(ssd.stats().get("chained_reads"), 1u);
}

TEST(SsdModelTest, ResetClockZeroesElapsedOnly)
{
    SsdModel ssd;
    PageId a = ssd.allocate();
    std::vector<uint8_t> data(16, 1);
    ASSERT_TRUE(ssd.writePage(a, data).isOk());
    EXPECT_GT(ssd.elapsed().ps(), 0u);
    ssd.resetClock();
    EXPECT_EQ(ssd.elapsed().ps(), 0u);
    EXPECT_EQ(ssd.stats().get("pages_written"), 1u);
}

TEST(SsdModelTest, OutOfRangeWriteReturnsInvalidArgument)
{
    SsdModel ssd;
    std::vector<uint8_t> data(kPageSize, 1);
    uint64_t before = ssd.elapsed().ps();
    EXPECT_EQ(ssd.writePage(5, data).code(),
              StatusCode::kInvalidArgument);
    // A rejected program charges no time and counts nothing.
    EXPECT_EQ(ssd.elapsed().ps(), before);
    EXPECT_EQ(ssd.stats().get("pages_written"), 0u);
}

TEST(SsdModelTest, FlushBarrierChargesConfiguredLatency)
{
    SsdModel ssd;
    ASSERT_TRUE(ssd.flushBarrier().isOk());
    EXPECT_EQ(ssd.elapsed().ps(), ssd.config().flush_latency.ps());
    EXPECT_EQ(ssd.stats().get("flushes"), 1u);
}

TEST(SsdModelTest, PowerCutKillsDeviceUntilRemount)
{
    SsdModel ssd;
    fault::FaultPlanConfig cfg;
    cfg.power_cut_after_writes = 2;
    fault::FaultPlan plan(cfg);
    ssd.attachFaultPlan(&plan);

    PageId a = ssd.allocate();
    PageId b = ssd.allocate();
    std::vector<uint8_t> data(kPageSize, 9);
    ASSERT_TRUE(ssd.writePage(a, data).isOk());
    EXPECT_FALSE(ssd.powerLost());
    EXPECT_EQ(ssd.writePage(b, data).code(), StatusCode::kUnavailable);
    EXPECT_TRUE(ssd.powerLost());
    // Every later command fails until the image is remounted.
    EXPECT_EQ(ssd.writePage(a, data).code(), StatusCode::kUnavailable);
    EXPECT_EQ(ssd.flushBarrier().code(), StatusCode::kUnavailable);
    std::vector<uint8_t> out;
    EXPECT_EQ(ssd.readChained(a, Link::kInternal, &out).code(),
              StatusCode::kUnavailable);
    // The dead device's NAND contents stay directly dumpable.
    std::span<const uint8_t> view;
    ASSERT_TRUE(ssd.store().read(a, &view).isOk());
    EXPECT_EQ(view[0], 9);
}

TEST(SsdModelTest, TornWriteAcksButPersistsPrefix)
{
    SsdModel ssd;
    fault::FaultPlanConfig cfg;
    cfg.seed = 3;
    cfg.torn_write_rate = 1.0; // every program tears
    fault::FaultPlan plan(cfg);
    ssd.attachFaultPlan(&plan);

    PageId a = ssd.allocate();
    std::vector<uint8_t> data(kPageSize, 0x5a);
    ASSERT_TRUE(ssd.writePage(a, data).isOk()); // the device lies
    EXPECT_EQ(plan.counters().torn_writes, 1u);
    std::span<const uint8_t> view;
    ASSERT_TRUE(ssd.store().read(a, &view).isOk());
    size_t persisted = 0;
    while (persisted < view.size() && view[persisted] == 0x5a) {
        ++persisted;
    }
    // The tail (if any) kept its old contents (zeros).
    for (size_t i = persisted; i < view.size(); ++i) {
        EXPECT_EQ(view[i], 0);
    }
}

TEST(SsdModelTest, DroppedWriteAcksButPersistsNothing)
{
    SsdModel ssd;
    fault::FaultPlanConfig cfg;
    cfg.seed = 5;
    cfg.dropped_write_rate = 1.0;
    fault::FaultPlan plan(cfg);
    ssd.attachFaultPlan(&plan);

    PageId a = ssd.allocate();
    std::vector<uint8_t> data(kPageSize, 0x77);
    ASSERT_TRUE(ssd.writePage(a, data).isOk());
    EXPECT_EQ(plan.counters().dropped_writes, 1u);
    std::span<const uint8_t> view;
    ASSERT_TRUE(ssd.store().read(a, &view).isOk());
    EXPECT_EQ(view[0], 0);
}

TEST(SsdModelTest, ComparisonConfigHasSingleFastLink)
{
    SsdConfig cfg = comparisonSsdConfig();
    EXPECT_DOUBLE_EQ(cfg.internal_bw_bps, cfg.external_bw_bps);
    EXPECT_GT(cfg.internal_bw_bps, 4.8e9);
}

} // namespace
} // namespace mithril::storage
