#include "storage/page_store.h"

#include <gtest/gtest.h>

#include <numeric>
#include <span>

namespace mithril::storage {
namespace {

TEST(PageStoreTest, AllocateReturnsSequentialIds)
{
    PageStore store;
    EXPECT_EQ(store.allocate(), 0u);
    EXPECT_EQ(store.allocate(), 1u);
    EXPECT_EQ(store.allocate(), 2u);
    EXPECT_EQ(store.pageCount(), 3u);
    EXPECT_EQ(store.sizeBytes(), 3 * kPageSize);
}

TEST(PageStoreTest, FreshPagesAreZeroed)
{
    PageStore store;
    PageId id = store.allocate();
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    for (uint8_t b : page) {
        ASSERT_EQ(b, 0);
    }
}

TEST(PageStoreTest, WriteReadRoundTrip)
{
    PageStore store;
    PageId id = store.allocate();
    std::vector<uint8_t> data(kPageSize);
    std::iota(data.begin(), data.end(), 0);
    ASSERT_TRUE(store.write(id, data).isOk());
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_TRUE(std::equal(data.begin(), data.end(), page.begin()));
}

TEST(PageStoreTest, PartialWriteKeepsTail)
{
    PageStore store;
    PageId id = store.allocate();
    std::vector<uint8_t> full(kPageSize, 0xff);
    ASSERT_TRUE(store.write(id, full).isOk());
    std::vector<uint8_t> head(16, 0x01);
    ASSERT_TRUE(store.write(id, head).isOk());
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_EQ(page[0], 0x01);
    EXPECT_EQ(page[15], 0x01);
    EXPECT_EQ(page[16], 0xff);
}

TEST(PageStoreTest, MutablePageWritesThrough)
{
    PageStore store;
    PageId id = store.allocate();
    store.mutablePage(id)[100] = 0x42;
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_EQ(page[100], 0x42);
}

TEST(PageStoreTest, PagesAreIndependent)
{
    PageStore store;
    PageId a = store.allocate();
    PageId b = store.allocate();
    store.mutablePage(a)[0] = 1;
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(b, &page).isOk());
    EXPECT_EQ(page[0], 0);
}

TEST(PageStoreTest, OutOfRangeWriteReturnsInvalidArgument)
{
    PageStore store;
    std::vector<uint8_t> data(16, 0xab);
    EXPECT_EQ(store.write(0, data).code(), StatusCode::kInvalidArgument);
    PageId id = store.allocate();
    EXPECT_EQ(store.write(id + 1, data).code(),
              StatusCode::kInvalidArgument);
    std::vector<uint8_t> oversized(kPageSize + 1, 0);
    EXPECT_EQ(store.write(id, oversized).code(),
              StatusCode::kInvalidArgument);
    // The failed writes must not have touched the page.
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_EQ(page[0], 0);
}

TEST(PageStoreTest, OutOfRangeReadReturnsInvalidArgument)
{
    PageStore store;
    std::span<const uint8_t> page;
    EXPECT_EQ(store.read(0, &page).code(), StatusCode::kInvalidArgument);
    PageId id = store.allocate();
    EXPECT_TRUE(store.contains(id));
    EXPECT_FALSE(store.contains(id + 1));
    EXPECT_EQ(store.read(id + 1, &page).code(),
              StatusCode::kInvalidArgument);
}

// ---- storage lifecycle: free / reuse / migration (DESIGN.md §14) ----

TEST(PageStoreTest, FreeBurnsTheLogicalIdForever)
{
    PageStore store;
    PageId a = store.allocate();
    PageId b = store.allocate();
    ASSERT_TRUE(store.free(a).isOk());
    EXPECT_FALSE(store.contains(a));
    EXPECT_TRUE(store.contains(b));
    EXPECT_EQ(store.physicalSlot(a), kUnmappedSlot);
    // Logical ids are never reused: the count stays monotone and the
    // next allocation gets a fresh id.
    EXPECT_EQ(store.pageCount(), 2u);
    EXPECT_EQ(store.allocate(), 2u);
    // I/O on the freed id fails like any invalid id.
    std::span<const uint8_t> page;
    EXPECT_EQ(store.read(a, &page).code(),
              StatusCode::kInvalidArgument);
    std::vector<uint8_t> data(16, 0xab);
    EXPECT_EQ(store.write(a, data).code(),
              StatusCode::kInvalidArgument);
    // Double free is an error, not a corruption.
    EXPECT_FALSE(store.free(a).isOk());
}

TEST(PageStoreTest, FreedSlotsAreReusedLowestFirst)
{
    PageStore store;
    PageId ids[4];
    for (PageId &id : ids) {
        id = store.allocate();
    }
    // Free two slots out of order; the next allocations must take the
    // lowest ones first (deterministic allocation history).
    ASSERT_TRUE(store.free(ids[2]).isOk());
    ASSERT_TRUE(store.free(ids[0]).isOk());
    EXPECT_EQ(store.freeSlotCount(), 2u);
    PageId e = store.allocate();
    EXPECT_EQ(store.physicalSlot(e), 0u);
    PageId f = store.allocate();
    EXPECT_EQ(store.physicalSlot(f), 2u);
    // Reused slots come back zero-filled.
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(e, &page).isOk());
    for (uint8_t b : page) {
        ASSERT_EQ(b, 0);
    }
    // No physical growth: the footprint still spans 4 slots.
    EXPECT_EQ(store.sizeBytes(), 4 * kPageSize);
}

TEST(PageStoreTest, RemapMovesBytesWithoutChangingTheId)
{
    PageStore store;
    // Two segments' worth of pages so a below-limit destination exists.
    std::vector<PageId> ids;
    for (uint64_t i = 0; i < kSegmentPages + 2; ++i) {
        ids.push_back(store.allocate());
    }
    PageId victim = ids.back();
    ASSERT_TRUE(store.free(ids[3]).isOk()); // opens slot 3
    std::vector<uint8_t> data(kPageSize, 0x5a);
    ASSERT_TRUE(store.write(victim, data).isOk());

    uint64_t old_slot = store.physicalSlot(victim);
    uint64_t dst = kUnmappedSlot;
    ASSERT_TRUE(store.allocatePhysicalBelow(kSegmentPages, &dst));
    EXPECT_EQ(dst, 3u);
    ASSERT_TRUE(store.writePhysical(dst, data).isOk());
    ASSERT_TRUE(store.remap(victim, dst).isOk());

    // Same logical id, same bytes, new slot; the old slot is free.
    EXPECT_EQ(store.physicalSlot(victim), dst);
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(victim, &page).isOk());
    EXPECT_EQ(page[0], 0x5a);
    EXPECT_EQ(store.freeSlotCount(), 1u); // old_slot came back
    uint64_t reused = kUnmappedSlot;
    ASSERT_TRUE(store.allocatePhysicalBelow(~0ull, &reused));
    EXPECT_EQ(reused, old_slot);
}

TEST(PageStoreTest, AllocatePhysicalBelowRespectsTheLimit)
{
    PageStore store;
    PageId a = store.allocate();
    PageId b = store.allocate();
    ASSERT_TRUE(store.free(b).isOk()); // slot 1 free
    uint64_t slot = kUnmappedSlot;
    // Only slot 1 is free, and it is not strictly below 1.
    EXPECT_FALSE(store.allocatePhysicalBelow(1, &slot));
    EXPECT_TRUE(store.allocatePhysicalBelow(2, &slot));
    EXPECT_EQ(slot, 1u);
    // An aborted migration returns the in-flight slot to the pool.
    store.freePhysical(slot);
    EXPECT_EQ(store.freeSlotCount(), 1u);
    (void)a;
}

TEST(PageStoreTest, SegmentOccupancyTracksFreesAndDrains)
{
    PageStore store;
    std::vector<PageId> ids;
    for (uint64_t i = 0; i < kSegmentPages + 4; ++i) {
        ids.push_back(store.allocate());
    }
    EXPECT_EQ(store.segmentCount(), 2u);
    EXPECT_EQ(store.segmentLive(0), kSegmentPages);
    EXPECT_EQ(store.segmentLive(1), 4u);
    EXPECT_EQ(store.segmentsLive(), 2u);
    EXPECT_EQ(store.segmentsFreed(), 0u);

    // Drain segment 1 completely: live count hits zero and the drain
    // registers in the cumulative reclaim stat.
    for (uint64_t i = kSegmentPages; i < kSegmentPages + 4; ++i) {
        ASSERT_TRUE(store.free(ids[i]).isOk());
    }
    EXPECT_EQ(store.segmentLive(1), 0u);
    EXPECT_EQ(store.segmentsLive(), 1u);
    EXPECT_EQ(store.segmentsFreed(), 1u);
}

} // namespace
} // namespace mithril::storage
