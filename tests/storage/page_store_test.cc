#include "storage/page_store.h"

#include <gtest/gtest.h>

#include <numeric>
#include <span>

namespace mithril::storage {
namespace {

TEST(PageStoreTest, AllocateReturnsSequentialIds)
{
    PageStore store;
    EXPECT_EQ(store.allocate(), 0u);
    EXPECT_EQ(store.allocate(), 1u);
    EXPECT_EQ(store.allocate(), 2u);
    EXPECT_EQ(store.pageCount(), 3u);
    EXPECT_EQ(store.sizeBytes(), 3 * kPageSize);
}

TEST(PageStoreTest, FreshPagesAreZeroed)
{
    PageStore store;
    PageId id = store.allocate();
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    for (uint8_t b : page) {
        ASSERT_EQ(b, 0);
    }
}

TEST(PageStoreTest, WriteReadRoundTrip)
{
    PageStore store;
    PageId id = store.allocate();
    std::vector<uint8_t> data(kPageSize);
    std::iota(data.begin(), data.end(), 0);
    ASSERT_TRUE(store.write(id, data).isOk());
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_TRUE(std::equal(data.begin(), data.end(), page.begin()));
}

TEST(PageStoreTest, PartialWriteKeepsTail)
{
    PageStore store;
    PageId id = store.allocate();
    std::vector<uint8_t> full(kPageSize, 0xff);
    ASSERT_TRUE(store.write(id, full).isOk());
    std::vector<uint8_t> head(16, 0x01);
    ASSERT_TRUE(store.write(id, head).isOk());
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_EQ(page[0], 0x01);
    EXPECT_EQ(page[15], 0x01);
    EXPECT_EQ(page[16], 0xff);
}

TEST(PageStoreTest, MutablePageWritesThrough)
{
    PageStore store;
    PageId id = store.allocate();
    store.mutablePage(id)[100] = 0x42;
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_EQ(page[100], 0x42);
}

TEST(PageStoreTest, PagesAreIndependent)
{
    PageStore store;
    PageId a = store.allocate();
    PageId b = store.allocate();
    store.mutablePage(a)[0] = 1;
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(b, &page).isOk());
    EXPECT_EQ(page[0], 0);
}

TEST(PageStoreTest, OutOfRangeWriteReturnsInvalidArgument)
{
    PageStore store;
    std::vector<uint8_t> data(16, 0xab);
    EXPECT_EQ(store.write(0, data).code(), StatusCode::kInvalidArgument);
    PageId id = store.allocate();
    EXPECT_EQ(store.write(id + 1, data).code(),
              StatusCode::kInvalidArgument);
    std::vector<uint8_t> oversized(kPageSize + 1, 0);
    EXPECT_EQ(store.write(id, oversized).code(),
              StatusCode::kInvalidArgument);
    // The failed writes must not have touched the page.
    std::span<const uint8_t> page;
    ASSERT_TRUE(store.read(id, &page).isOk());
    EXPECT_EQ(page[0], 0);
}

TEST(PageStoreTest, OutOfRangeReadReturnsInvalidArgument)
{
    PageStore store;
    std::span<const uint8_t> page;
    EXPECT_EQ(store.read(0, &page).code(), StatusCode::kInvalidArgument);
    PageId id = store.allocate();
    EXPECT_TRUE(store.contains(id));
    EXPECT_FALSE(store.contains(id + 1));
    EXPECT_EQ(store.read(id + 1, &page).code(),
              StatusCode::kInvalidArgument);
}

} // namespace
} // namespace mithril::storage
