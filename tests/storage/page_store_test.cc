#include "storage/page_store.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mithril::storage {
namespace {

TEST(PageStoreTest, AllocateReturnsSequentialIds)
{
    PageStore store;
    EXPECT_EQ(store.allocate(), 0u);
    EXPECT_EQ(store.allocate(), 1u);
    EXPECT_EQ(store.allocate(), 2u);
    EXPECT_EQ(store.pageCount(), 3u);
    EXPECT_EQ(store.sizeBytes(), 3 * kPageSize);
}

TEST(PageStoreTest, FreshPagesAreZeroed)
{
    PageStore store;
    PageId id = store.allocate();
    auto page = store.read(id);
    for (uint8_t b : page) {
        ASSERT_EQ(b, 0);
    }
}

TEST(PageStoreTest, WriteReadRoundTrip)
{
    PageStore store;
    PageId id = store.allocate();
    std::vector<uint8_t> data(kPageSize);
    std::iota(data.begin(), data.end(), 0);
    store.write(id, data);
    auto page = store.read(id);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), page.begin()));
}

TEST(PageStoreTest, PartialWriteKeepsTail)
{
    PageStore store;
    PageId id = store.allocate();
    std::vector<uint8_t> full(kPageSize, 0xff);
    store.write(id, full);
    std::vector<uint8_t> head(16, 0x01);
    store.write(id, head);
    auto page = store.read(id);
    EXPECT_EQ(page[0], 0x01);
    EXPECT_EQ(page[15], 0x01);
    EXPECT_EQ(page[16], 0xff);
}

TEST(PageStoreTest, MutablePageWritesThrough)
{
    PageStore store;
    PageId id = store.allocate();
    store.mutablePage(id)[100] = 0x42;
    EXPECT_EQ(store.read(id)[100], 0x42);
}

TEST(PageStoreTest, PagesAreIndependent)
{
    PageStore store;
    PageId a = store.allocate();
    PageId b = store.allocate();
    store.mutablePage(a)[0] = 1;
    EXPECT_EQ(store.read(b)[0], 0);
}

} // namespace
} // namespace mithril::storage
