/**
 * @file
 * Worker-count independence (ISSUE 5 acceptance): the same corpus
 * through the same shard layout must produce byte-identical merged
 * query results and identical per-shard modeled time whether the pool
 * has 1, 2, or 8 workers — including with a fault plan attached. The
 * argument being tested: routing happens on the caller's thread in
 * append order, and each shard applies its batches FIFO, so worker
 * scheduling can change only *when* work happens, never *what*.
 */
#include "svc/log_service.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mithril::svc {
namespace {

std::string
corpus()
{
    std::string text;
    for (int i = 0; i < 6000; ++i) {
        switch (i % 4) {
        case 0:
            text += "RAS KERNEL INFO cache parity error corrected seq" +
                    std::to_string(i) + "\n";
            break;
        case 1:
            text += "RAS KERNEL FATAL data TLB error interrupt seq" +
                    std::to_string(i) + "\n";
            break;
        case 2:
            text += "RAS APP FATAL ciod failed message prefix seq" +
                    std::to_string(i) + "\n";
            break;
        default:
            text += "NODE LINK INFO heartbeat ok seq" +
                    std::to_string(i) + "\n";
            break;
        }
    }
    return text;
}

/** Device image of a small donor store, dumped the way a crash-
 *  recovery mount would see it — the seed for a recovered shard. */
std::string
donorImage()
{
    std::string img =
        std::string(::testing::TempDir()) + "svc_det_reopen_donor.img";
    core::MithriLog donor;
    EXPECT_TRUE(donor
                    .ingestText("RAS KERNEL INFO recovered golden head "
                                "seq-old0\n"
                                "RAS KERNEL FATAL recovered golden head "
                                "seq-old1\n")
                    .isOk());
    EXPECT_TRUE(donor.flush().isOk());
    EXPECT_TRUE(donor.saveDeviceImage(img).isOk());
    return img;
}

/** Everything that must be invariant across worker counts. */
struct Fingerprint {
    std::string merged_lines;          ///< all kept lines, in order
    std::vector<uint64_t> matched;     ///< per query
    std::vector<uint64_t> shard_lines; ///< per shard
    std::vector<uint64_t> shard_ps;    ///< per (query, shard) SimTime
    uint64_t pages_dropped = 0;

    bool operator==(const Fingerprint &o) const
    {
        return merged_lines == o.merged_lines && matched == o.matched &&
               shard_lines == o.shard_lines && shard_ps == o.shard_ps &&
               pages_dropped == o.pages_dropped;
    }
};

Fingerprint
runOnce(size_t threads, RoutingPolicy routing,
        const std::string &fault_spec,
        const std::string *reopen_img = nullptr)
{
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = threads;
    cfg.routing = routing;
    cfg.batch_lines = 64;
    cfg.fault_spec = fault_spec;
    LogService service(cfg);
    if (reopen_img != nullptr) {
        // Shard 0 starts life as a recovered store brought back live:
        // the rest of the run must not be able to tell.
        EXPECT_TRUE(service.recoverShard(0, *reopen_img).isOk());
        EXPECT_TRUE(service.reopenShard(0).isOk());
    }

    std::string text = corpus();
    // Line-by-line with backpressure retries: the retry schedule
    // differs per worker count, the accepted sequence must not.
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        std::string_view line(text.data() + start, end - start);
        Status st = service.append(line);
        if (!st.isOk()) {
            EXPECT_EQ(st.code(), StatusCode::kResourceExhausted)
                << st.toString();
            service.drain();
            continue; // retry the same line
        }
        start = end + 1;
    }
    EXPECT_TRUE(service.flush().isOk());

    Fingerprint fp;
    for (size_t i = 0; i < service.shardCount(); ++i) {
        fp.shard_lines.push_back(service.shard(i).lineCount());
    }
    for (const char *q :
         {"KERNEL & INFO", "FATAL", "error | failed", "seq1234"}) {
        ServiceQueryResult r;
        Status st = service.query(q, &r);
        EXPECT_TRUE(st.isOk()) << st.toString();
        fp.matched.push_back(r.matched_lines);
        for (const accel::KeptLine &line : r.lines) {
            fp.merged_lines += line.text;
            fp.merged_lines += '\n';
        }
        for (const core::QueryBreakdown &b : r.per_shard) {
            fp.shard_ps.push_back(b.total_time.ps());
        }
        fp.pages_dropped += r.pages_dropped;
    }
    return fp;
}

TEST(SvcDeterminismTest, WorkerCountInvariantRoundRobin)
{
    Fingerprint one = runOnce(1, RoutingPolicy::kRoundRobin, "");
    Fingerprint two = runOnce(2, RoutingPolicy::kRoundRobin, "");
    Fingerprint eight = runOnce(8, RoutingPolicy::kRoundRobin, "");
    EXPECT_GT(one.matched[0], 0u);
    EXPECT_FALSE(one.merged_lines.empty());
    EXPECT_TRUE(one == two);
    EXPECT_TRUE(one == eight);
}

TEST(SvcDeterminismTest, WorkerCountInvariantHashRouting)
{
    Fingerprint one = runOnce(1, RoutingPolicy::kHashToken, "");
    Fingerprint eight = runOnce(8, RoutingPolicy::kHashToken, "");
    EXPECT_TRUE(one == eight);
}

TEST(SvcDeterminismTest, WorkerCountInvariantAfterShardReopen)
{
    // ISSUE 8 acceptance: a shard recovered from a crash image and
    // reopened under a fresh journal generation behaves exactly like a
    // fresh shard — merged results stay byte-identical across worker
    // counts, and the reopened shard accepts live ingest on top of its
    // recovered lines.
    std::string img = donorImage();
    Fingerprint one = runOnce(1, RoutingPolicy::kRoundRobin, "", &img);
    Fingerprint two = runOnce(2, RoutingPolicy::kRoundRobin, "", &img);
    Fingerprint eight =
        runOnce(8, RoutingPolicy::kRoundRobin, "", &img);
    EXPECT_GT(one.matched[0], 0u);
    EXPECT_TRUE(one == two);
    EXPECT_TRUE(one == eight);
    // 6000 corpus lines round-robin over 4 live shards, plus the two
    // recovered donor lines already on shard 0.
    ASSERT_FALSE(one.shard_lines.empty());
    EXPECT_EQ(one.shard_lines[0], 1500u + 2u);
}

TEST(SvcDeterminismTest, WorkerCountInvariantUnderReadFaults)
{
    // Per-shard fault plans draw from per-shard deterministic streams;
    // worker count must not shift a single draw.
    const std::string spec = "seed=9,ber=1e-6,ecc=1e-4,timeout=0.005";
    Fingerprint one = runOnce(1, RoutingPolicy::kRoundRobin, spec);
    Fingerprint two = runOnce(2, RoutingPolicy::kRoundRobin, spec);
    Fingerprint eight = runOnce(8, RoutingPolicy::kRoundRobin, spec);
    EXPECT_TRUE(one == two);
    EXPECT_TRUE(one == eight);
}

TEST(SvcDeterminismTest, FaultedRunStaysCorrectOrDegradesVisibly)
{
    // Sanity on the faulted fingerprint itself: with ECC recovering
    // most flips, the run either matches the clean result or drops
    // pages it could not read — never silently diverges elsewhere.
    Fingerprint clean = runOnce(2, RoutingPolicy::kRoundRobin, "");
    Fingerprint faulted = runOnce(
        2, RoutingPolicy::kRoundRobin,
        "seed=9,ber=1e-6,ecc=1e-4,timeout=0.005");
    EXPECT_EQ(clean.shard_lines, faulted.shard_lines);
    if (faulted.pages_dropped == 0) {
        EXPECT_EQ(clean.matched, faulted.matched);
        EXPECT_EQ(clean.merged_lines, faulted.merged_lines);
    } else {
        for (size_t i = 0; i < clean.matched.size(); ++i) {
            EXPECT_LE(faulted.matched[i], clean.matched[i]);
        }
    }
}

} // namespace
} // namespace mithril::svc
