/**
 * @file
 * Concurrent recording into obs::Histogram — part of the "svc" label
 * so the TSan tier (ctest --preset tsan) proves the relaxed-atomic
 * recording path clean under real cross-thread interleavings: raw
 * parallel recorders on one shared histogram, and the full service
 * path where worker threads record the svc.* stage latencies while
 * producers append and query concurrently.
 */
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "svc/log_service.h"

namespace mithril {
namespace {

TEST(HistogramConcurrency, ParallelRecordersLoseNothing)
{
    obs::Histogram h;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                // Distinct per-thread ranges so min/max are known.
                h.record(static_cast<uint64_t>(t) * kPerThread + i + 1);
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    constexpr uint64_t kTotal = kThreads * kPerThread;
    EXPECT_EQ(h.count(), kTotal);
    EXPECT_EQ(h.sum(), kTotal * (kTotal + 1) / 2);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), kTotal);
    uint64_t bucket_total = 0;
    for (size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
        bucket_total += h.bucketCount(i);
    }
    EXPECT_EQ(bucket_total, kTotal);
    obs::Quantiles q = h.quantiles();
    EXPECT_LE(q.p50, q.p90);
    EXPECT_LE(q.p99, q.p999);
    EXPECT_LE(q.p999, h.max());
}

TEST(MetricsConcurrency, ConcurrentIncrementsLoseNoUpdates)
{
    obs::MetricsRegistry m;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 50000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m] {
            // Half resolve the counter fresh each time (exercising
            // registry locking), half cache the handle (the hot-path
            // pattern).
            obs::Counter &cached = m.counter("test.hits");
            for (uint64_t i = 0; i < kPerThread; ++i) {
                if (i % 2 == 0) {
                    m.counter("test.hits").add();
                } else {
                    cached.add();
                }
            }
        });
    }
    for (auto &th : threads) {
        th.join();
    }
    EXPECT_EQ(m.counterValue("test.hits"), kThreads * kPerThread);
}

TEST(HistogramConcurrency, ConcurrentRegistryLookupsShareOneHistogram)
{
    obs::MetricsRegistry metrics;
    constexpr int kThreads = 6;
    constexpr uint64_t kPerThread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&metrics] {
            // findOrCreate under contention must hand every thread the
            // same histogram.
            obs::Histogram &h =
                metrics.quantileHistogram("svc.contended.sim_ps");
            for (uint64_t i = 0; i < kPerThread; ++i) {
                h.record(i + 1);
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    EXPECT_EQ(metrics.quantileHistogram("svc.contended.sim_ps").count(),
              kThreads * kPerThread);
}

TEST(HistogramConcurrency, SvcWorkersRecordStageLatencies)
{
    obs::MetricsRegistry metrics;
    svc::LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 4;
    cfg.batch_lines = 16;
    cfg.metrics = &metrics;
    svc::LogService service(cfg);

    // Concurrent producers + a querying thread: worker threads record
    // svc.queue_wait/svc.batch_apply while the query path records
    // svc.shard_query/svc.query_fanout/svc.merge.
    constexpr int kProducers = 3;
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&service, p] {
            for (int i = 0; i < 400; ++i) {
                std::string line = "producer" + std::to_string(p) +
                                   " payload line " + std::to_string(i);
                Status st = service.append(line);
                while (st.code() == StatusCode::kResourceExhausted) {
                    service.drain();
                    st = service.append(line);
                }
                ASSERT_TRUE(st.isOk()) << st.toString();
            }
        });
    }
    std::thread querier([&service, &stop] {
        while (!stop.load()) {
            svc::ServiceQueryResult r;
            Status st = service.query("payload", &r);
            ASSERT_TRUE(st.isOk()) << st.toString();
        }
    });
    for (std::thread &t : producers) {
        t.join();
    }
    stop.store(true);
    querier.join();
    ASSERT_TRUE(service.flush().isOk());

    obs::MetricsSnapshot snap = metrics.snapshot();
    for (const char *stage :
         {"svc.queue_wait.wall_ns", "svc.batch_apply.wall_ns",
          "svc.shard_query.wall_ns", "svc.query_fanout.wall_ns",
          "svc.merge.wall_ns"}) {
        auto it = snap.quantile_histograms.find(stage);
        ASSERT_NE(it, snap.quantile_histograms.end()) << stage;
        EXPECT_GT(it->second.count, 0u) << stage;
    }
    // The modeled domain for the stages that carry one.
    EXPECT_GT(snap.quantile_histograms.at("svc.batch_apply.sim_ps")
                  .count,
              0u);
    EXPECT_GT(snap.quantile_histograms.at("svc.query_fanout.sim_ps")
                  .count,
              0u);
}

} // namespace
} // namespace mithril
