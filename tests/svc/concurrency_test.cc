/**
 * @file
 * Concurrency tests for the service layer — the primary targets of the
 * TSan tier (`ctest -L svc` under the tsan preset). Each test drives
 * real cross-thread interleavings: multi-producer ingest, queries
 * racing ingest, pool shutdown with a backlog. Assertions are kept
 * schedule-independent (totals, statuses) — the interesting property
 * here is "no data race / no deadlock", which the sanitizer checks.
 */
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svc/bounded_queue.h"
#include "svc/log_service.h"

namespace mithril::svc {
namespace {

TEST(BoundedQueueTest, MpmcTransfersEverythingExactlyOnce)
{
    BoundedQueue<int> queue(8);
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 2000;

    std::atomic<long long> sum{0};
    std::atomic<int> popped{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&queue, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(queue.push(p * kPerProducer + i));
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (std::optional<int> item = queue.pop()) {
                sum.fetch_add(*item);
                popped.fetch_add(1);
            }
        });
    }
    for (int p = 0; p < kProducers; ++p) {
        threads[p].join();
    }
    queue.close(); // consumers drain the tail, then exit
    for (int c = 0; c < kConsumers; ++c) {
        threads[kProducers + c].join();
    }
    const long long n = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueueTest, CloseUnblocksWaiters)
{
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.push(1)); // fill to capacity
    // Nothing ever pops before close(), so whether this push blocks
    // first or observes the close first, it must return false.
    std::thread blocked_producer([&] { EXPECT_FALSE(queue.push(2)); });
    queue.close();
    blocked_producer.join();
    // A closed queue still drains what it holds, then reports
    // exhaustion and rejects new work.
    ASSERT_TRUE(queue.pop().has_value());
    EXPECT_FALSE(queue.pop().has_value());
    EXPECT_FALSE(queue.push(3));

    // And a consumer waiting on an empty queue is released by close()
    // (or sees it immediately) — never left blocked.
    BoundedQueue<int> empty(1);
    std::thread blocked_consumer(
        [&] { EXPECT_FALSE(empty.pop().has_value()); });
    empty.close();
    blocked_consumer.join();
}

TEST(SvcConcurrencyTest, MultiProducerIngestLosesNothing)
{
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 4;
    cfg.batch_lines = 32;
    LogService service(cfg);

    constexpr int kProducers = 8;
    constexpr int kPerProducer = 500;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&service, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                std::string line = "producer" + std::to_string(p) +
                                   " payload seq" + std::to_string(i);
                Status st = service.append(line);
                while (!st.isOk() &&
                       st.code() == StatusCode::kResourceExhausted) {
                    service.drain();
                    st = service.append(line);
                }
                ASSERT_TRUE(st.isOk()) << st.toString();
            }
        });
    }
    for (std::thread &t : producers) {
        t.join();
    }
    ASSERT_TRUE(service.flush().isOk());
    EXPECT_EQ(service.lineCount(),
              static_cast<uint64_t>(kProducers) * kPerProducer);

    ServiceQueryResult r;
    ASSERT_TRUE(service.query("payload", &r).isOk());
    EXPECT_EQ(r.matched_lines,
              static_cast<uint64_t>(kProducers) * kPerProducer);
    ASSERT_TRUE(service.query("producer3 & seq42", &r).isOk());
    EXPECT_EQ(r.matched_lines, 1u);
}

TEST(SvcConcurrencyTest, QueriesRaceIngestSafely)
{
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 4;
    cfg.batch_lines = 16;
    LogService service(cfg);
    // Pre-populate so early queries see committed pages.
    for (int i = 0; i < 512; ++i) {
        ASSERT_TRUE(
            service.append("warm start seq" + std::to_string(i))
                .isOk());
    }
    ASSERT_TRUE(service.flush().isOk());

    std::atomic<bool> stop{false};
    std::thread ingester([&] {
        int i = 0;
        while (!stop.load()) {
            Status st = service.append("live traffic seq" +
                                       std::to_string(i++));
            if (!st.isOk()) {
                ASSERT_EQ(st.code(), StatusCode::kResourceExhausted)
                    << st.toString();
                service.drain();
            }
        }
    });

    std::vector<std::thread> queriers;
    for (int t = 0; t < 3; ++t) {
        queriers.emplace_back([&service] {
            for (int i = 0; i < 20; ++i) {
                ServiceQueryResult r;
                Status st = service.query("seq7 | warm", &r);
                ASSERT_TRUE(st.isOk()) << st.toString();
                // The warm prefix is committed; live traffic may or
                // may not be visible — monotone lower bound only.
                EXPECT_GE(r.matched_lines, 512u);
            }
        });
    }
    for (std::thread &t : queriers) {
        t.join();
    }
    stop.store(true);
    ingester.join();
    ASSERT_TRUE(service.flush().isOk());

    ServiceQueryResult r;
    ASSERT_TRUE(service.query("warm & start", &r).isOk());
    EXPECT_EQ(r.matched_lines, 512u);
}

TEST(SvcConcurrencyTest, ConcurrentFlushesAndReadsAreSafe)
{
    LogServiceConfig cfg;
    cfg.shards = 2;
    cfg.threads = 2;
    cfg.batch_lines = 8;
    LogService service(cfg);

    std::thread producer([&] {
        for (int i = 0; i < 2000; ++i) {
            Status st =
                service.append("mixed load seq" + std::to_string(i));
            if (!st.isOk()) {
                service.drain();
            }
        }
    });
    std::thread flusher([&] {
        for (int i = 0; i < 10; ++i) {
            EXPECT_TRUE(service.flush().isOk());
        }
    });
    std::thread reader([&] {
        uint64_t last = 0;
        for (int i = 0; i < 50; ++i) {
            uint64_t now = service.lineCount();
            EXPECT_GE(now, last); // committed count never regresses
            last = now;
        }
    });
    producer.join();
    flusher.join();
    reader.join();
    ASSERT_TRUE(service.flush().isOk());
    EXPECT_LE(service.lineCount(), 2000u);
    EXPECT_GT(service.lineCount(), 0u);
}

TEST(SvcConcurrencyTest, DestructorDrainsQueuedBatchesCleanly)
{
    // Tear the service down with work still queued: the pool must
    // finish every already-queued batch (pop() drains after close)
    // and join without deadlock; only unbatched open lines may drop.
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 2;
    cfg.batch_lines = 4;
    {
        LogService service(cfg);
        for (int i = 0; i < 1000; ++i) {
            Status st =
                service.append("teardown seq" + std::to_string(i));
            if (!st.isOk()) {
                service.drain();
            }
        }
        // No drain/flush: destructor races the backlog.
    }
    SUCCEED();
}

} // namespace
} // namespace mithril::svc
