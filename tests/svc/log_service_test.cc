/**
 * @file
 * Functional tests for the sharded log service: routing, merged query
 * correctness against a single-store oracle, admission control, sticky
 * ingest errors, and the recovered read-only shard state.
 *
 * The concurrency-shaped tests (multi-producer ingest, queries racing
 * ingest) live in concurrency_test.cc so the TSan tier can target them
 * directly; determinism-across-worker-counts lives in
 * svc_determinism_test.cc.
 */
#include "svc/log_service.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/parser.h"

namespace mithril::svc {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

std::string
smallCorpus(int lines = 3000)
{
    std::string text;
    for (int i = 0; i < lines; ++i) {
        if (i % 3 == 0) {
            text += "RAS KERNEL INFO instruction cache parity error "
                    "corrected seq" + std::to_string(i) + "\n";
        } else if (i % 3 == 1) {
            text += "RAS KERNEL FATAL data TLB error interrupt seq" +
                    std::to_string(i) + "\n";
        } else {
            text += "RAS APP FATAL ciod error reading message prefix "
                    "seq" + std::to_string(i) + "\n";
        }
    }
    return text;
}

std::vector<std::string>
sortedTexts(const std::vector<accel::KeptLine> &lines)
{
    std::vector<std::string> texts;
    texts.reserve(lines.size());
    for (const accel::KeptLine &l : lines) {
        texts.push_back(l.text);
    }
    std::sort(texts.begin(), texts.end());
    return texts;
}

TEST(LogServiceTest, MergedQueryMatchesSingleStoreOracle)
{
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 4;
    LogService service(cfg);
    std::string corpus = smallCorpus();
    ASSERT_TRUE(service.appendText(corpus).isOk());
    ASSERT_TRUE(service.flush().isOk());
    EXPECT_EQ(service.lineCount(), 3000u);

    core::MithriLog oracle;
    ASSERT_TRUE(oracle.ingestText(corpus).isOk());
    ASSERT_TRUE(oracle.flush().isOk());

    for (const char *text :
         {"KERNEL & INFO", "FATAL", "KERNEL & !FATAL", "seq42"}) {
        ServiceQueryResult merged;
        core::QueryResult single;
        ASSERT_TRUE(service.query(text, &merged).isOk());
        ASSERT_TRUE(oracle.run(mustParse(text), &single).isOk());
        EXPECT_EQ(merged.matched_lines, single.matched_lines) << text;
        // Shards interleave the corpus, so merged order differs from
        // the single store's — the match *set* must be identical.
        EXPECT_EQ(sortedTexts(merged.lines), sortedTexts(single.lines))
            << text;
    }
}

TEST(LogServiceTest, RoundRobinBalancesShards)
{
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 2;
    LogService service(cfg);
    ASSERT_TRUE(service.appendText(smallCorpus(4000)).isOk());
    ASSERT_TRUE(service.flush().isOk());
    for (size_t i = 0; i < service.shardCount(); ++i) {
        EXPECT_EQ(service.shard(i).lineCount(), 1000u) << "shard " << i;
    }
}

TEST(LogServiceTest, HashRoutingKeepsTokenGroupsTogether)
{
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 2;
    cfg.routing = RoutingPolicy::kHashToken;
    cfg.batch_lines = 8;
    LogService service(cfg);
    // Two first-token groups: each must land wholly on one shard.
    // Skewed routing concentrates backlog, so ride out backpressure.
    auto appendRetrying = [&](const std::string &line) {
        Status st = service.append(line);
        while (!st.isOk() &&
               st.code() == StatusCode::kResourceExhausted) {
            service.drain();
            st = service.append(line);
        }
        ASSERT_TRUE(st.isOk()) << st.toString();
    };
    for (int i = 0; i < 64; ++i) {
        appendRetrying("alpha payload " + std::to_string(i));
        appendRetrying("bravo payload " + std::to_string(i));
    }
    ASSERT_TRUE(service.flush().isOk());
    EXPECT_EQ(service.lineCount(), 128u);
    size_t shards_used = 0;
    for (size_t i = 0; i < service.shardCount(); ++i) {
        uint64_t n = service.shard(i).lineCount();
        EXPECT_TRUE(n == 0 || n == 64 || n == 128) << "shard " << i
            << " holds " << n << " lines — a token group split";
        shards_used += (n != 0);
    }
    EXPECT_GE(shards_used, 1u);

    ServiceQueryResult r;
    ASSERT_TRUE(service.query("payload", &r).isOk());
    EXPECT_EQ(r.matched_lines, 128u);
}

TEST(LogServiceTest, BackpressureRejectsThenRecovers)
{
    LogServiceConfig cfg;
    cfg.shards = 1;
    cfg.threads = 1;
    cfg.batch_lines = 1;  // every line is a batch
    cfg.queue_depth = 1;  // one may wait
    LogService service(cfg);

    uint64_t accepted = 0;
    uint64_t rejected = 0;
    for (int i = 0; i < 5000; ++i) {
        Status st = service.append("burst line seq" +
                                   std::to_string(i));
        if (st.isOk()) {
            ++accepted;
        } else {
            ASSERT_EQ(st.code(), StatusCode::kResourceExhausted)
                << st.toString();
            ++rejected;
            if (rejected > 4) {
                break; // seen enough; don't spin the full loop
            }
            service.drain(); // backlog clears -> admission reopens
        }
    }
    // A producer that only buffers strings outruns a single worker
    // paying full per-line ingest; admission control must have fired.
    EXPECT_GT(rejected, 0u);
    service.drain();
    ASSERT_TRUE(service.append("after drain").isOk());
    ASSERT_TRUE(service.flush().isOk());
    EXPECT_EQ(service.lineCount(), accepted + 1);
    EXPECT_EQ(service.metrics().counterValue("svc.lines_rejected"),
              rejected);
    EXPECT_EQ(service.metrics().counterValue("svc.lines_routed"),
              accepted + 1);
}

TEST(LogServiceTest, SealedShardErrorIsSticky)
{
    LogServiceConfig cfg;
    cfg.shards = 1;
    cfg.threads = 1;
    cfg.batch_lines = 1;
    LogService service(cfg);
    ASSERT_TRUE(service.append("only line").isOk());
    ASSERT_TRUE(service.seal().isOk());

    // The append is accepted (routing only buffers); the failure
    // surfaces when the worker applies it, then sticks.
    Status first = service.append("after seal");
    if (first.isOk()) {
        service.drain();
    }
    Status second = service.append("after seal again");
    EXPECT_FALSE(second.isOk());
    EXPECT_EQ(service.lineCount(), 1u);
    EXPECT_GE(service.metrics().counterValue("svc.ingest_errors"), 1u);
}

TEST(LogServiceTest, RecoveredShardIsReadonlyButQueryable)
{
    // Build a device image the way a crash-recovery mount would see
    // it: ingest, flush, dump NAND.
    std::string img = tempPath("svc_recover_shard.img");
    {
        core::MithriLog donor;
        ASSERT_TRUE(donor
                        .ingestText("golden alpha one\n"
                                    "golden beta two\n"
                                    "golden gamma three\n")
                        .isOk());
        ASSERT_TRUE(donor.flush().isOk());
        ASSERT_TRUE(donor.saveDeviceImage(img).isOk());
    }

    LogServiceConfig cfg;
    cfg.shards = 2;
    cfg.threads = 2;
    cfg.batch_lines = 1;
    LogService service(cfg);
    ASSERT_TRUE(service.recoverShard(1, img).isOk());
    EXPECT_EQ(service.readonlyShards(), 1u);
    EXPECT_EQ(service.metrics().gauge("svc.shards_readonly").value(),
              1.0);

    // Round-robin: line 0 -> shard 0 (accepted), line 1 -> shard 1
    // (recovered -> kFailedPrecondition, nothing buffered).
    ASSERT_TRUE(service.append("fresh line zero").isOk());
    Status st = service.append("fresh line one");
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition)
        << st.toString();
    ASSERT_TRUE(service.flush().isOk());

    // Queries still fan out over the recovered shard's lines.
    ServiceQueryResult r;
    ASSERT_TRUE(service.query("golden", &r).isOk());
    EXPECT_EQ(r.matched_lines, 3u);
    ASSERT_TRUE(service.query("fresh", &r).isOk());
    EXPECT_EQ(r.matched_lines, 1u);

    // seal() skips the recovered shard instead of failing on it.
    EXPECT_TRUE(service.seal().isOk());
}

TEST(LogServiceTest, ReopenShardResumesIngestAndSealsLikeFresh)
{
    std::string img = tempPath("svc_reopen_shard.img");
    {
        core::MithriLog donor;
        ASSERT_TRUE(donor
                        .ingestText("golden alpha one\n"
                                    "golden beta two\n"
                                    "golden gamma three\n")
                        .isOk());
        ASSERT_TRUE(donor.flush().isOk());
        ASSERT_TRUE(donor.saveDeviceImage(img).isOk());
    }

    LogServiceConfig cfg;
    cfg.shards = 2;
    cfg.threads = 2;
    cfg.batch_lines = 1;
    LogService service(cfg);
    ASSERT_TRUE(service.recoverShard(1, img).isOk());
    ASSERT_TRUE(service.reopenShard(1).isOk());
    EXPECT_EQ(service.readonlyShards(), 0u);
    EXPECT_EQ(service.metrics().gauge("svc.shards_readonly").value(),
              0.0);
    EXPECT_EQ(service.metrics().counterValue("svc.shards_reopened"),
              1u);

    // Round-robin re-admits the reopened shard: line 0 -> shard 0,
    // line 1 -> shard 1 on top of its three recovered lines.
    ASSERT_TRUE(service.append("fresh line zero").isOk());
    ASSERT_TRUE(service.append("fresh line one").isOk());
    ASSERT_TRUE(service.flush().isOk());
    EXPECT_EQ(service.shard(1).lineCount(), 4u);

    ServiceQueryResult r;
    ASSERT_TRUE(service.query("golden", &r).isOk());
    EXPECT_EQ(r.matched_lines, 3u);
    ASSERT_TRUE(service.query("fresh", &r).isOk());
    EXPECT_EQ(r.matched_lines, 2u);

    // Regression for the seal() skip logic: a reopened shard is no
    // longer "recovered", so seal() must seal it like a fresh one
    // instead of skipping it.
    ASSERT_TRUE(service.seal().isOk());
    EXPECT_TRUE(service.shard(1).sealed());
}

TEST(LogServiceTest, ReopenShardPreconditions)
{
    std::string sealed_img = tempPath("svc_reopen_sealed.img");
    {
        core::MithriLog donor;
        ASSERT_TRUE(donor.ingestText("sealed donor line\n").isOk());
        ASSERT_TRUE(donor.seal().isOk());
        ASSERT_TRUE(donor.saveDeviceImage(sealed_img).isOk());
    }
    LogServiceConfig cfg;
    cfg.shards = 2;
    cfg.threads = 1;
    cfg.batch_lines = 1;
    LogService service(cfg);
    EXPECT_EQ(service.reopenShard(7).code(),
              StatusCode::kInvalidArgument);
    // A live shard that was never recovered has nothing to reopen.
    EXPECT_EQ(service.reopenShard(0).code(),
              StatusCode::kFailedPrecondition);

    // A durably sealed donor recovers read-only but refuses reopen —
    // seal is terminal across recovery — and stays read-only.
    ASSERT_TRUE(service.recoverShard(1, sealed_img).isOk());
    EXPECT_EQ(service.reopenShard(1).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(service.readonlyShards(), 1u);
    EXPECT_EQ(service.metrics().gauge("svc.shards_readonly").value(),
              1.0);
    EXPECT_EQ(service.metrics().counterValue("svc.shards_reopened"),
              0u);
}

TEST(LogServiceTest, RecoverShardPreconditions)
{
    std::string img = tempPath("svc_recover_precond.img");
    {
        core::MithriLog donor;
        ASSERT_TRUE(donor.ingestText("x y z\n").isOk());
        ASSERT_TRUE(donor.flush().isOk());
        ASSERT_TRUE(donor.saveDeviceImage(img).isOk());
    }
    LogServiceConfig cfg;
    cfg.shards = 2;
    cfg.threads = 1;
    cfg.batch_lines = 1;
    LogService service(cfg);
    EXPECT_EQ(service.recoverShard(7, img).code(),
              StatusCode::kInvalidArgument);

    ASSERT_TRUE(service.append("occupies shard zero").isOk());
    service.drain();
    EXPECT_EQ(service.recoverShard(0, img).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_TRUE(service.recoverShard(1, img).isOk());
}

TEST(LogServiceTest, QueryResultRollupIsConsistent)
{
    LogServiceConfig cfg;
    cfg.shards = 4;
    cfg.threads = 4;
    LogService service(cfg);
    ASSERT_TRUE(service.appendText(smallCorpus()).isOk());
    ASSERT_TRUE(service.flush().isOk());

    ServiceQueryResult r;
    ASSERT_TRUE(service.query("KERNEL & INFO", &r).isOk());
    EXPECT_EQ(r.matched_lines, 1000u);
    ASSERT_EQ(r.per_shard.size(), 4u);

    // Parallel roll-up: the fan-out total is the slowest shard, never
    // the sum; scalar counts sum.
    uint64_t max_ps = 0;
    uint64_t pages = 0;
    for (const core::QueryBreakdown &b : r.per_shard) {
        max_ps = std::max<uint64_t>(max_ps, b.total_time.ps());
        pages += b.pages_scanned;
    }
    EXPECT_EQ(r.total_time.ps(), max_ps);
    EXPECT_EQ(r.pages_scanned, pages);
    EXPECT_EQ(r.breakdown.total_time.ps(), r.total_time.ps());
    EXPECT_EQ(r.breakdown.matched_lines, r.matched_lines);
    EXPECT_GE(r.total_time.ps(),
              std::max(r.storage_time.ps(), r.compute_time.ps()));
    EXPECT_GE(r.shardImbalancePct(), 0.0);
    EXPECT_LT(r.shardImbalancePct(), 100.0);
    EXPECT_GT(r.wall_seconds, 0.0);

    const obs::MetricsRegistry &m = service.metrics();
    EXPECT_EQ(m.counterValue("svc.queries"), 1u);
    EXPECT_EQ(m.counterValue("svc.shard_queries"), 4u);
    EXPECT_EQ(m.counterValue("svc.lines_routed"), 3000u);
}

TEST(LogServiceTest, ZeroConfigClampsToMinimumService)
{
    LogServiceConfig cfg;
    cfg.shards = 0;
    cfg.threads = 0;
    cfg.batch_lines = 0;
    cfg.queue_depth = 0;
    LogService service(cfg);
    EXPECT_EQ(service.shardCount(), 1u);
    EXPECT_EQ(service.threadCount(), 1u);
    ASSERT_TRUE(service.append("still works").isOk());
    ASSERT_TRUE(service.flush().isOk());
    EXPECT_EQ(service.lineCount(), 1u);
}

TEST(LogServiceTest, ParseErrorSurfacesBeforeFanout)
{
    LogService service(LogServiceConfig{});
    ServiceQueryResult r;
    EXPECT_FALSE(service.query("((", &r).isOk());
    EXPECT_EQ(service.metrics().counterValue("svc.shard_queries"), 0u);
}

} // namespace
} // namespace mithril::svc
