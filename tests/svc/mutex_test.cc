/**
 * @file
 * mithril::Mutex / MutexLock / CondVar wrapper semantics — part of the
 * "svc" label so the TSan tier exercises the annotated primitives
 * under real cross-thread interleavings (the static `-Wthread-safety`
 * side is checked by the lint_tsa gate and the tsa fixtures).
 */
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace mithril {
namespace {

TEST(Mutex, TryLockReportsContention)
{
    Mutex mu;
    ASSERT_TRUE(mu.tryLock());
    // Second acquisition must fail from another thread (try_lock on a
    // mutex the same thread holds would be UB for std::mutex).
    bool second = true;
    std::thread t([&mu, &second] { second = mu.tryLock(); });
    t.join();
    EXPECT_FALSE(second);
    mu.unlock();
}

TEST(Mutex, MutexLockSerializesCriticalSections)
{
    Mutex mu;
    uint64_t counter = 0;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&mu, &counter] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                MutexLock lock(mu);
                ++counter;
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    MutexLock lock(mu);
    EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(CondVar, PingPongHandoff)
{
    // Two threads alternate strictly via predicate waits — the
    // canonical while-loop idiom from common/mutex.h, driven hard
    // enough that a lost wakeup or broken wait/lock handoff hangs or
    // corrupts the sequence.
    Mutex mu;
    CondVar turn_changed;
    int turn = 0;  // 0 = ping's move, 1 = pong's move
    constexpr int kRounds = 5000;
    std::vector<int> order;
    order.reserve(2 * kRounds);

    auto player = [&](int me) {
        for (int i = 0; i < kRounds; ++i) {
            MutexLock lock(mu);
            while (turn != me) {
                turn_changed.wait(mu);
            }
            order.push_back(me);
            turn = 1 - me;
            turn_changed.notifyOne();
        }
    };
    std::thread ping([&player] { player(0); });
    std::thread pong([&player] { player(1); });
    ping.join();
    pong.join();

    ASSERT_EQ(order.size(), static_cast<size_t>(2 * kRounds));
    for (size_t i = 0; i < order.size(); ++i) {
        EXPECT_EQ(order[i], static_cast<int>(i % 2));
    }
}

TEST(CondVar, NotifyAllWakesEveryWaiter)
{
    Mutex mu;
    CondVar released;
    bool go = false;
    int awake = 0;
    constexpr int kWaiters = 6;
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
        waiters.emplace_back([&] {
            MutexLock lock(mu);
            while (!go) {
                released.wait(mu);
            }
            ++awake;
        });
    }
    {
        MutexLock lock(mu);
        go = true;
        released.notifyAll();
    }
    for (std::thread &t : waiters) {
        t.join();
    }
    MutexLock lock(mu);
    EXPECT_EQ(awake, kWaiters);
}

} // namespace
} // namespace mithril
