/**
 * @file
 * obs::Histogram: quantiles against an exact sorted oracle across
 * adversarial distributions, merge algebra (associative and
 * commutative), empty/single-sample edges, and the bucket-mapping
 * boundary behavior the error bound rests on.
 */
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

namespace mithril::obs {
namespace {

/** Exact oracle: the same rank convention the histogram documents —
 *  the ceil(q*n)-th smallest sample (clamped to [1, n]). */
uint64_t
oracleQuantile(std::vector<uint64_t> sorted, double q)
{
    if (sorted.empty()) {
        return 0;
    }
    std::sort(sorted.begin(), sorted.end());
    auto rank = static_cast<uint64_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
    rank = std::min<uint64_t>(rank, sorted.size());
    return sorted[rank - 1];
}

void
fill(Histogram *h, const std::vector<uint64_t> &values)
{
    for (uint64_t v : values) {
        h->record(v);
    }
}

/** The histogram must report exactly the oracle sample's bucket lower
 *  bound, which in turn must sit within the 1/kSubCount relative
 *  error bound of the oracle value. */
void
expectQuantilesMatchOracle(const std::vector<uint64_t> &values)
{
    Histogram h;
    fill(&h, values);
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        uint64_t exact = oracleQuantile(values, q);
        uint64_t reported = h.quantile(q);
        EXPECT_EQ(reported,
                  Histogram::bucketLo(Histogram::indexFor(exact)))
            << "q=" << q << " exact=" << exact;
        EXPECT_LE(reported, exact) << "q=" << q;
        if (exact >= Histogram::kSubCount) {
            // Bucket width is value/32 at worst.
            EXPECT_LE(exact - reported, exact / Histogram::kSubCount)
                << "q=" << q << " exact=" << exact;
        } else {
            EXPECT_EQ(reported, exact) << "linear region is exact";
        }
    }
}

TEST(Histogram, QuantilesMatchOracleOnConstantDistribution)
{
    expectQuantilesMatchOracle(std::vector<uint64_t>(1000, 42));
    expectQuantilesMatchOracle(std::vector<uint64_t>(7, 123456789));
}

TEST(Histogram, QuantilesMatchOracleOnUniformDistribution)
{
    Rng rng(11);
    std::vector<uint64_t> values;
    for (int i = 0; i < 5000; ++i) {
        values.push_back(rng.below(1u << 20));
    }
    expectQuantilesMatchOracle(values);
}

TEST(Histogram, QuantilesMatchOracleOnBimodalDistribution)
{
    // Fast path ~1us, slow path ~1s: five orders of magnitude apart,
    // with the slow mode exactly in the p99 region.
    Rng rng(12);
    std::vector<uint64_t> values;
    for (int i = 0; i < 2000; ++i) {
        bool slow = rng.chance(0.015);
        uint64_t base = slow ? 1'000'000'000'000ull : 1'000'000ull;
        values.push_back(base + rng.below(base / 10));
    }
    expectQuantilesMatchOracle(values);
}

TEST(Histogram, QuantilesMatchOracleOnHeavyTail)
{
    // Powers of two up to 2^50 with geometric weights: every quantile
    // lands near a bucket-scheme breakpoint.
    Rng rng(13);
    std::vector<uint64_t> values;
    for (int i = 0; i < 4000; ++i) {
        uint64_t shift = rng.skewedBelow(50, 3.0);
        values.push_back((1ull << shift) + rng.below((1ull << shift) / 2 + 1));
    }
    expectQuantilesMatchOracle(values);
}

TEST(Histogram, QuantilesMatchOracleOnPowerOfTwoEdges)
{
    std::vector<uint64_t> values;
    for (uint32_t exp = 0; exp < 62; ++exp) {
        uint64_t v = 1ull << exp;
        values.push_back(v);
        values.push_back(v - 1);
        values.push_back(v + 1);
    }
    expectQuantilesMatchOracle(values);
}

TEST(Histogram, EmptyHistogramReportsZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0u);
    Quantiles q = h.quantiles();
    EXPECT_EQ(q.p50, 0u);
    EXPECT_EQ(q.p999, 0u);
}

TEST(Histogram, SingleSampleDominatesEveryQuantile)
{
    Histogram h;
    h.record(777777);
    uint64_t lo = Histogram::bucketLo(Histogram::indexFor(777777));
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_EQ(h.quantile(q), lo);
    }
    EXPECT_EQ(h.min(), 777777u);
    EXPECT_EQ(h.max(), 777777u);
    EXPECT_EQ(h.sum(), 777777u);
}

TEST(Histogram, QuantilesBatchAgreesWithSingleCalls)
{
    Rng rng(14);
    Histogram h;
    for (int i = 0; i < 3000; ++i) {
        h.record(rng.below(1ull << 40));
    }
    Quantiles q = h.quantiles();
    EXPECT_EQ(q.p50, h.quantile(0.50));
    EXPECT_EQ(q.p90, h.quantile(0.90));
    EXPECT_EQ(q.p99, h.quantile(0.99));
    EXPECT_EQ(q.p999, h.quantile(0.999));
    EXPECT_LE(q.p50, q.p90);
    EXPECT_LE(q.p90, q.p99);
    EXPECT_LE(q.p99, q.p999);
}

void
expectSame(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
        ASSERT_EQ(a.bucketCount(i), b.bucketCount(i)) << "bucket " << i;
    }
}

std::vector<uint64_t>
randomValues(uint64_t seed, size_t n, uint64_t bound)
{
    Rng rng(seed);
    std::vector<uint64_t> out;
    for (size_t i = 0; i < n; ++i) {
        out.push_back(rng.below(bound));
    }
    return out;
}

TEST(Histogram, MergeIsAssociative)
{
    auto va = randomValues(21, 500, 1ull << 30);
    auto vb = randomValues(22, 300, 1u << 10);
    auto vc = randomValues(23, 700, ~0ull);

    // (A + B) + C
    Histogram left, hb, hc;
    fill(&left, va);
    fill(&hb, vb);
    fill(&hc, vc);
    left.merge(hb);
    left.merge(hc);

    // A + (B + C)
    Histogram right, hbc;
    fill(&right, va);
    fill(&hbc, vb);
    Histogram hc2;
    fill(&hc2, vc);
    hbc.merge(hc2);
    right.merge(hbc);

    expectSame(left, right);
}

TEST(Histogram, MergeIsCommutative)
{
    auto va = randomValues(31, 400, 1ull << 44);
    auto vb = randomValues(32, 600, 1u << 16);

    Histogram ab, a2, ba, b2;
    fill(&ab, va);
    fill(&a2, va);
    fill(&ba, vb);
    fill(&b2, vb);
    Histogram tmp_b;
    fill(&tmp_b, vb);
    ab.merge(tmp_b);
    Histogram tmp_a;
    fill(&tmp_a, va);
    ba.merge(tmp_a);

    expectSame(ab, ba);
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    auto va = randomValues(41, 250, 1ull << 33);
    Histogram h, reference, empty;
    fill(&h, va);
    fill(&reference, va);
    h.merge(empty);
    expectSame(h, reference);
    // And empty absorbing a populated histogram equals it.
    Histogram h2;
    h2.merge(reference);
    expectSame(h2, reference);
}

TEST(Histogram, MergedQuantilesEqualUnionQuantiles)
{
    auto va = randomValues(51, 800, 1ull << 28);
    auto vb = randomValues(52, 800, 1ull << 36);
    Histogram ha, hb, hu;
    fill(&ha, va);
    fill(&hb, vb);
    std::vector<uint64_t> all = va;
    all.insert(all.end(), vb.begin(), vb.end());
    fill(&hu, all);
    ha.merge(hb);
    expectSame(ha, hu);
    Quantiles merged = ha.quantiles(), direct = hu.quantiles();
    EXPECT_EQ(merged.p50, direct.p50);
    EXPECT_EQ(merged.p999, direct.p999);
}

TEST(Histogram, BucketMappingIsMonotoneAndTight)
{
    // The linear region maps one-to-one.
    for (uint64_t v = 0; v < Histogram::kSubCount; ++v) {
        EXPECT_EQ(Histogram::indexFor(v), v);
        EXPECT_EQ(Histogram::bucketLo(v), v);
    }
    // Every bucket's lower bound maps back to that bucket, and
    // boundary values fall on the right side of the edge.
    std::vector<uint64_t> probes;
    for (uint32_t exp = 5; exp < 63; ++exp) {
        probes.push_back(1ull << exp);
        probes.push_back((1ull << exp) - 1);
        probes.push_back((1ull << exp) + (1ull << (exp - 5)));
    }
    probes.push_back(~0ull);
    for (uint64_t v : probes) {
        size_t idx = Histogram::indexFor(v);
        ASSERT_LT(idx, Histogram::kBuckets) << v;
        EXPECT_LE(Histogram::bucketLo(idx), v) << v;
        EXPECT_EQ(Histogram::indexFor(Histogram::bucketLo(idx)), idx)
            << v;
        if (idx + 1 < Histogram::kBuckets &&
            Histogram::indexFor(~0ull) != idx) {
            EXPECT_LT(v, Histogram::bucketLo(idx + 1)) << v;
        }
    }
}

TEST(StageLatency, RecordsBothDomainsThroughRegistry)
{
    MetricsRegistry metrics;
    StageLatency stage(&metrics, "unit.stage");
    stage.recordWallNs(1500);
    stage.recordSim(SimTime::microseconds(3));
    stage.recordSim(SimTime::microseconds(5));
    EXPECT_EQ(metrics.quantileHistogram("unit.stage.wall_ns").count(),
              1u);
    Histogram &sim = metrics.quantileHistogram("unit.stage.sim_ps");
    EXPECT_EQ(sim.count(), 2u);
    EXPECT_EQ(sim.min(), SimTime::microseconds(3).ps());
    EXPECT_EQ(sim.max(), SimTime::microseconds(5).ps());
}

TEST(StageLatency, InertDefaultDropsSamples)
{
    StageLatency stage;
    stage.recordWallNs(1);  // must not crash
    stage.recordSim(SimTime::microseconds(1));
    EXPECT_EQ(stage.wallNs(), nullptr);
    EXPECT_EQ(stage.simPs(), nullptr);
}

TEST(StageTimer, RecordsOnEndOnceWithOptionalSimDomain)
{
    MetricsRegistry metrics;
    StageLatency stage(&metrics, "unit.timer");
    {
        StageTimer t(&stage);
        t.setSimDuration(SimTime::microseconds(7));
        t.end();
        t.end();  // idempotent
    }
    EXPECT_EQ(metrics.quantileHistogram("unit.timer.wall_ns").count(),
              1u);
    EXPECT_EQ(metrics.quantileHistogram("unit.timer.sim_ps").count(),
              1u);
    {
        StageTimer wall_only(&stage);  // destructor records wall only
    }
    EXPECT_EQ(metrics.quantileHistogram("unit.timer.wall_ns").count(),
              2u);
    EXPECT_EQ(metrics.quantileHistogram("unit.timer.sim_ps").count(),
              1u);
}

TEST(MetricsSnapshotWithQuantiles, CarriesBucketsAndQuantiles)
{
    MetricsRegistry metrics;
    Histogram &h = metrics.quantileHistogram("snap.sim_ps");
    for (uint64_t v : {10ull, 100ull, 1000ull, 100000ull}) {
        h.record(v);
    }
    MetricsSnapshot snap = metrics.snapshot();
    auto it = snap.quantile_histograms.find("snap.sim_ps");
    ASSERT_NE(it, snap.quantile_histograms.end());
    EXPECT_EQ(it->second.count, 4u);
    EXPECT_EQ(it->second.min, 10u);
    EXPECT_EQ(it->second.max, 100000u);
    uint64_t bucket_total = 0;
    uint64_t prev_lo = 0;
    bool first = true;
    for (const auto &[lo, n] : it->second.buckets) {
        EXPECT_TRUE(first || lo > prev_lo) << "bucket bounds sorted";
        first = false;
        prev_lo = lo;
        bucket_total += n;
    }
    EXPECT_EQ(bucket_total, it->second.count);
    EXPECT_LE(it->second.quantiles.p50, it->second.quantiles.p999);
}

} // namespace
} // namespace mithril::obs
