#include "obs/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace mithril::obs {
namespace {

TEST(Tracer, SpanNestingAndOrdering)
{
    Tracer tracer;
    {
        Span outer = tracer.span("query", "core");
        {
            Span inner = tracer.span("query.index_lookup", "core");
            inner.setSimDuration(SimTime::picoseconds(100));
        }
        {
            Span inner = tracer.span("query.filter", "core");
            inner.setSimDuration(SimTime::picoseconds(50));
        }
        outer.setSimDuration(SimTime::picoseconds(150));
    }
    std::vector<TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    // Children complete before the parent; completion order is the
    // record order.
    EXPECT_EQ(events[0].name, "query.index_lookup");
    EXPECT_EQ(events[1].name, "query.filter");
    EXPECT_EQ(events[2].name, "query");
    EXPECT_EQ(events[0].depth, 1u);
    EXPECT_EQ(events[1].depth, 1u);
    EXPECT_EQ(events[2].depth, 0u);
    // Sim track: the second child starts where the first ended; the
    // parent started at the cursor both were laid out from.
    EXPECT_TRUE(events[0].has_sim);
    EXPECT_EQ(events[0].sim_start_ps, 0u);
    EXPECT_EQ(events[0].sim_dur_ps, 100u);
    EXPECT_EQ(events[1].sim_start_ps, 100u);
    EXPECT_EQ(events[1].sim_dur_ps, 50u);
    EXPECT_EQ(events[2].sim_start_ps, 0u);
    EXPECT_EQ(events[2].sim_dur_ps, 150u);
    EXPECT_EQ(tracer.simCursor().ps(), 150u);
}

TEST(Tracer, EndIsIdempotentAndMoveSafe)
{
    Tracer tracer;
    Span a = tracer.span("a");
    a.end();
    a.end();  // no double record
    Span b = tracer.span("b");
    Span c = std::move(b);
    c.end();
    EXPECT_EQ(tracer.events().size(), 2u);
    // Default-constructed span is inert.
    { Span inert; }
}

TEST(Tracer, SimDeterminismAcrossRuns)
{
    auto run = [] {
        Tracer tracer;
        for (int i = 0; i < 5; ++i) {
            Span s = tracer.span("phase");
            s.setSimDuration(SimTime::picoseconds(1000 + i));
        }
        std::vector<std::pair<uint64_t, uint64_t>> sim;
        for (const TraceEvent &e : tracer.events()) {
            sim.emplace_back(e.sim_start_ps, e.sim_dur_ps);
        }
        return sim;
    };
    EXPECT_EQ(run(), run());
}

TEST(Tracer, BoundedRingDropsOldest)
{
    Tracer tracer(4);
    for (int i = 0; i < 10; ++i) {
        Span s = tracer.span("s" + std::to_string(i));
    }
    std::vector<TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // Oldest-first within the retained window.
    EXPECT_EQ(events[0].name, "s6");
    EXPECT_EQ(events[3].name, "s9");
}

TEST(Tracer, ChromeTraceJsonGolden)
{
    Tracer tracer;
    {
        Span outer = tracer.span("query", "core");
        Span inner = tracer.span("query.page_stream", "core");
        inner.setSimDuration(SimTime::picoseconds(2'000'000));
        inner.end();
        outer.setSimDuration(SimTime::picoseconds(2'500'000));
    }
    std::string json = tracer.chromeTraceJson();

    std::string err;
    ASSERT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    // Chrome trace-event contract: complete events with the four
    // required fields, present in both time-domain tracks.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"query.page_stream\""),
              std::string::npos);
    EXPECT_NE(json.find("wall (measured)"), std::string::npos);
    EXPECT_NE(json.find("simtime (modeled)"), std::string::npos);
    // Process-name metadata events for both tracks.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(Tracer, ClearKeepsCursorMonotonic)
{
    Tracer tracer;
    {
        Span s = tracer.span("a");
        s.setSimDuration(SimTime::picoseconds(500));
    }
    tracer.clear();
    EXPECT_TRUE(tracer.events().empty());
    {
        Span s = tracer.span("b");
        s.setSimDuration(SimTime::picoseconds(10));
    }
    // The sim timeline never rewinds across clear().
    EXPECT_EQ(tracer.events().at(0).sim_start_ps, 500u);
    EXPECT_EQ(tracer.simCursor().ps(), 510u);
}

} // namespace
} // namespace mithril::obs
