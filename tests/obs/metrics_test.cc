#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "obs/json.h"
#include "obs/report.h"

namespace mithril::obs {
namespace {

TEST(MetricsRegistry, CounterBasics)
{
    MetricsRegistry m;
    Counter &c = m.counter("core.lines_ingested");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name resolves to the same counter.
    EXPECT_EQ(&m.counter("core.lines_ingested"), &c);
    EXPECT_EQ(m.counterValue("core.lines_ingested"), 42u);
    EXPECT_EQ(m.counterValue("no.such"), 0u);
}

// The concurrent-increment stress test lives with the other
// cross-thread obs tests in tests/svc/histogram_concurrency_test.cc,
// where the TSan tier covers it.

TEST(MetricsRegistry, Labels)
{
    MetricsRegistry m;
    m.counter("ssd.link_busy_ps", {{"link", "internal"}}).add(10);
    m.counter("ssd.link_busy_ps", {{"link", "external"}}).add(20);
    EXPECT_EQ(m.counterValue("ssd.link_busy_ps{link=internal}"), 10u);
    EXPECT_EQ(m.counterValue("ssd.link_busy_ps{link=external}"), 20u);
}

TEST(MetricsRegistry, Gauge)
{
    MetricsRegistry m;
    Gauge &g = m.gauge("lzah.ratio");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.set(3.0);
    MetricsSnapshot snap = m.snapshot();
    EXPECT_DOUBLE_EQ(snap.gauges.at("lzah.ratio"), 3.0);
}

TEST(LogHistogram, BucketEdges)
{
    // Bucket 0 holds zeros; bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(LogHistogram::bucketFor(0), 0u);
    EXPECT_EQ(LogHistogram::bucketFor(1), 1u);
    EXPECT_EQ(LogHistogram::bucketFor(2), 2u);
    EXPECT_EQ(LogHistogram::bucketFor(3), 2u);
    EXPECT_EQ(LogHistogram::bucketFor(4), 3u);
    EXPECT_EQ(LogHistogram::bucketFor(7), 3u);
    EXPECT_EQ(LogHistogram::bucketFor(8), 4u);
    EXPECT_EQ(LogHistogram::bucketFor(~0ull), 64u);

    EXPECT_EQ(LogHistogram::bucketLo(0), 0u);
    EXPECT_EQ(LogHistogram::bucketLo(1), 1u);
    EXPECT_EQ(LogHistogram::bucketLo(4), 8u);

    LogHistogram h;
    h.record(0);
    h.record(1);
    h.record(7);
    h.record(8);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 16u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(MetricsRegistry, StatSetBridge)
{
    MetricsRegistry m;
    StatSet stats;
    stats.add("pages_read", 3);  // pre-bind accumulation
    stats.bind(&m, "ssd.");
    // bind() replays what was already counted...
    EXPECT_EQ(m.counterValue("ssd.pages_read"), 3u);
    // ...and forwards everything after.
    stats.add("pages_read", 2);
    stats.add("batches");
    EXPECT_EQ(m.counterValue("ssd.pages_read"), 5u);
    EXPECT_EQ(m.counterValue("ssd.batches"), 1u);
    // The StatSet's own view stays intact (deprecated shim contract).
    EXPECT_EQ(stats.get("pages_read"), 5u);
}

TEST(MetricsRegistry, SnapshotJsonIsValid)
{
    MetricsRegistry m;
    m.counter("a.count").add(1);
    m.counter("b.count", {{"k", "v"}}).add(2);
    m.gauge("c.ratio").set(0.5);
    m.histogram("d.sizes").record(100);
    std::string json = metricsToJson(m);
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"a.count\""), std::string::npos);
    EXPECT_NE(json.find("\"d.sizes\""), std::string::npos);
}

TEST(JsonWriter, EscapesAndNesting)
{
    std::string out;
    JsonWriter w(&out);
    w.beginObject();
    w.key("text");
    w.value("line\n\"quoted\"\t\\");
    w.key("list");
    w.beginArray();
    w.value(static_cast<uint64_t>(1));
    w.value(-2.5);
    w.value(true);
    w.endArray();
    w.endObject();
    std::string err;
    EXPECT_TRUE(jsonValid(out, &err)) << err << "\n" << out;
    EXPECT_NE(out.find("\\n"), std::string::npos);
    EXPECT_NE(out.find("\\\""), std::string::npos);
}

TEST(JsonValid, RejectsMalformed)
{
    EXPECT_TRUE(jsonValid("{\"a\": [1, 2.5e3, null, \"x\"]}"));
    EXPECT_FALSE(jsonValid(""));
    EXPECT_FALSE(jsonValid("{"));
    EXPECT_FALSE(jsonValid("{\"a\":}"));
    EXPECT_FALSE(jsonValid("{\"a\": 1,}"));
    EXPECT_FALSE(jsonValid("{\"a\": 1} extra"));
    EXPECT_FALSE(jsonValid("{'a': 1}"));
}

TEST(JsonRecord, BenchLineFormat)
{
    JsonRecord rec("my_bench");
    rec.field("dataset", "BGL2")
        .field("value", 1.5)
        .field("count", static_cast<uint64_t>(7))
        .field("ok", true);
    std::string json = rec.json();
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"bench\":\"my_bench\""), std::string::npos);
}

} // namespace
} // namespace mithril::obs
