#include "common/text.h"

#include <gtest/gtest.h>

namespace mithril {
namespace {

TEST(SplitTokensTest, BasicSplit)
{
    auto toks = splitTokens("RAS KERNEL INFO");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0], "RAS");
    EXPECT_EQ(toks[1], "KERNEL");
    EXPECT_EQ(toks[2], "INFO");
}

TEST(SplitTokensTest, CollapsesRuns)
{
    auto toks = splitTokens("  a \t b  ");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0], "a");
    EXPECT_EQ(toks[1], "b");
}

TEST(SplitTokensTest, EmptyAndAllDelims)
{
    EXPECT_TRUE(splitTokens("").empty());
    EXPECT_TRUE(splitTokens("   \t ").empty());
}

TEST(ForEachTokenTest, ColumnsCount)
{
    std::vector<uint32_t> cols;
    forEachToken("a b c", [&](std::string_view, uint32_t col) {
        cols.push_back(col);
        return true;
    });
    EXPECT_EQ(cols, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(ForEachTokenTest, EarlyStop)
{
    int seen = 0;
    forEachToken("a b c", [&](std::string_view, uint32_t) {
        ++seen;
        return seen < 2;
    });
    EXPECT_EQ(seen, 2);
}

TEST(SplitLinesTest, TerminatorsExcluded)
{
    auto lines = splitLines("a\nbb\nccc\n");
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[2], "ccc");
}

TEST(SplitLinesTest, TrailingUnterminatedLineIncluded)
{
    auto lines = splitLines("a\nb");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1], "b");
}

TEST(SplitLinesTest, EmptyLinesPreserved)
{
    auto lines = splitLines("a\n\nb\n");
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[1], "");
}

TEST(HumanFormatTest, Bytes)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(1500), "1.50 KB");
    EXPECT_EQ(humanBytes(11.55e9), "11.55 GB");
}

TEST(HumanFormatTest, Bandwidth)
{
    EXPECT_EQ(humanBandwidth(3.2e9), "3.20 GB/s");
}

TEST(StrprintfTest, Formats)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
}

} // namespace
} // namespace mithril
