#include "common/hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mithril {
namespace {

TEST(Mix64Test, IsDeterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64Test, AvalanchesSingleBitFlips)
{
    // Flipping one input bit should flip a substantial number of output
    // bits (a weak but effective sanity test for mixers).
    for (int bit = 0; bit < 64; ++bit) {
        uint64_t a = mix64(0x1234567890abcdefull);
        uint64_t b = mix64(0x1234567890abcdefull ^ (1ull << bit));
        int flipped = __builtin_popcountll(a ^ b);
        EXPECT_GE(flipped, 16) << "bit " << bit;
        EXPECT_LE(flipped, 48) << "bit " << bit;
    }
}

TEST(Hash64Test, EmptyInputIsStable)
{
    EXPECT_EQ(hash64("", 0), hash64("", 0));
    EXPECT_NE(hash64("", 0), hash64("", 1));
}

TEST(Hash64Test, SeedChangesResult)
{
    EXPECT_NE(hash64("token", 1), hash64("token", 2));
}

TEST(Hash64Test, LengthExtensionDiffers)
{
    // "ab" + "c" vs "abc" with different boundaries must differ from
    // plain prefixes.
    EXPECT_NE(hash64("abc"), hash64("ab"));
    EXPECT_NE(hash64("abc"), hash64("abcd"));
}

TEST(Hash64Test, TailBytesMatter)
{
    // Inputs differing only in the last byte past an 8-byte boundary.
    std::string a = "12345678X";
    std::string b = "12345678Y";
    EXPECT_NE(hash64(a), hash64(b));
}

TEST(Hash64Test, DistributionOverBucketsIsRoughlyUniform)
{
    constexpr int kBuckets = 64;
    constexpr int kSamples = 64000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kSamples; ++i) {
        std::string key = "token-" + std::to_string(i);
        ++counts[hash64(key) % kBuckets];
    }
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets / 2);
        EXPECT_LT(c, kSamples / kBuckets * 2);
    }
}

TEST(HashPairTest, ProducesIndicesInRange)
{
    HashPair pair(256);
    for (int i = 0; i < 1000; ++i) {
        std::string key = "k" + std::to_string(i);
        EXPECT_LT(pair.h0(key), 256u);
        EXPECT_LT(pair.h1(key), 256u);
    }
}

TEST(HashPairTest, TwoFunctionsAreIndependent)
{
    // h0 == h1 for a random key should happen about 1/rows of the time.
    HashPair pair(256);
    int collisions = 0;
    constexpr int kSamples = 10000;
    for (int i = 0; i < kSamples; ++i) {
        std::string key = "key-" + std::to_string(i);
        if (pair.h0(key) == pair.h1(key)) {
            ++collisions;
        }
    }
    // Expected ~39; allow a wide band.
    EXPECT_LT(collisions, 120);
}

TEST(HashPairTest, DeterministicAcrossInstances)
{
    HashPair a(1024), b(1024);
    EXPECT_EQ(a.h0("RAS"), b.h0("RAS"));
    EXPECT_EQ(a.h1("RAS"), b.h1("RAS"));
}

} // namespace
} // namespace mithril
