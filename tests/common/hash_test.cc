#include "common/hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mithril {
namespace {

TEST(Mix64Test, IsDeterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64Test, AvalanchesSingleBitFlips)
{
    // Flipping one input bit should flip a substantial number of output
    // bits (a weak but effective sanity test for mixers).
    for (int bit = 0; bit < 64; ++bit) {
        uint64_t a = mix64(0x1234567890abcdefull);
        uint64_t b = mix64(0x1234567890abcdefull ^ (1ull << bit));
        int flipped = __builtin_popcountll(a ^ b);
        EXPECT_GE(flipped, 16) << "bit " << bit;
        EXPECT_LE(flipped, 48) << "bit " << bit;
    }
}

TEST(Hash64Test, EmptyInputIsStable)
{
    EXPECT_EQ(hash64("", 0), hash64("", 0));
    EXPECT_NE(hash64("", 0), hash64("", 1));
}

TEST(Hash64Test, SeedChangesResult)
{
    EXPECT_NE(hash64("token", 1), hash64("token", 2));
}

TEST(Hash64Test, LengthExtensionDiffers)
{
    // "ab" + "c" vs "abc" with different boundaries must differ from
    // plain prefixes.
    EXPECT_NE(hash64("abc"), hash64("ab"));
    EXPECT_NE(hash64("abc"), hash64("abcd"));
}

TEST(Hash64Test, TailBytesMatter)
{
    // Inputs differing only in the last byte past an 8-byte boundary.
    std::string a = "12345678X";
    std::string b = "12345678Y";
    EXPECT_NE(hash64(a), hash64(b));
}

TEST(Hash64Test, DistributionOverBucketsIsRoughlyUniform)
{
    constexpr int kBuckets = 64;
    constexpr int kSamples = 64000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kSamples; ++i) {
        std::string key = "token-" + std::to_string(i);
        ++counts[hash64(key) % kBuckets];
    }
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets / 2);
        EXPECT_LT(c, kSamples / kBuckets * 2);
    }
}

TEST(Crc32Test, MatchesKnownVectors)
{
    // Standard IEEE CRC-32 check values.
    EXPECT_EQ(crc32("", 0), 0u);
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog", 43),
              0x414fa339u);
}

TEST(Crc32Test, SeedContinuesAcrossRanges)
{
    const char *msg = "123456789";
    uint32_t split = crc32(msg + 4, 5, crc32(msg, 4));
    EXPECT_EQ(split, crc32(msg, 9));
}

TEST(Crc32Test, DetectsSingleBitFlips)
{
    std::vector<uint8_t> buf(4096, 0x5a);
    uint32_t clean = crc32(buf.data(), buf.size());
    for (size_t bit : {size_t{0}, size_t{17}, size_t{4096 * 8 - 1}}) {
        buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        EXPECT_NE(crc32(buf.data(), buf.size()), clean) << "bit " << bit;
        buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    EXPECT_EQ(crc32(buf.data(), buf.size()), clean);
}

TEST(HashPairTest, ProducesIndicesInRange)
{
    HashPair pair(256);
    for (int i = 0; i < 1000; ++i) {
        std::string key = "k" + std::to_string(i);
        EXPECT_LT(pair.h0(key), 256u);
        EXPECT_LT(pair.h1(key), 256u);
    }
}

TEST(HashPairTest, TwoFunctionsAreIndependent)
{
    // h0 == h1 for a random key should happen about 1/rows of the time.
    HashPair pair(256);
    int collisions = 0;
    constexpr int kSamples = 10000;
    for (int i = 0; i < kSamples; ++i) {
        std::string key = "key-" + std::to_string(i);
        if (pair.h0(key) == pair.h1(key)) {
            ++collisions;
        }
    }
    // Expected ~39; allow a wide band.
    EXPECT_LT(collisions, 120);
}

TEST(HashPairTest, DeterministicAcrossInstances)
{
    HashPair a(1024), b(1024);
    EXPECT_EQ(a.h0("RAS"), b.h0("RAS"));
    EXPECT_EQ(a.h1("RAS"), b.h1("RAS"));
}

} // namespace
} // namespace mithril
