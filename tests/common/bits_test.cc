#include "common/bits.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mithril {
namespace {

TEST(AlignTest, AlignUp)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(alignUp(17, 16), 32u);
}

TEST(AlignTest, IsAligned)
{
    EXPECT_TRUE(isAligned(0, 8));
    EXPECT_TRUE(isAligned(64, 8));
    EXPECT_FALSE(isAligned(63, 8));
}

TEST(LeIoTest, RoundTripsScalars)
{
    std::vector<uint8_t> buf;
    putLe<uint16_t>(buf, 0xbeef);
    putLe<uint32_t>(buf, 0xdeadbeef);
    putLe<uint64_t>(buf, 0x0123456789abcdefull);
    ASSERT_EQ(buf.size(), 14u);
    EXPECT_EQ(getLe<uint16_t>(buf.data()), 0xbeef);
    EXPECT_EQ(getLe<uint32_t>(buf.data() + 2), 0xdeadbeefu);
    EXPECT_EQ(getLe<uint64_t>(buf.data() + 6), 0x0123456789abcdefull);
}

TEST(BitIoTest, SingleBits)
{
    BitWriter writer;
    writer.write(1, 1);
    writer.write(0, 1);
    writer.write(1, 1);
    auto bytes = writer.take();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0b101);

    BitReader reader(bytes.data(), bytes.size());
    uint64_t v;
    ASSERT_TRUE(reader.read(1, &v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(reader.read(1, &v));
    EXPECT_EQ(v, 0u);
    ASSERT_TRUE(reader.read(1, &v));
    EXPECT_EQ(v, 1u);
}

TEST(BitIoTest, ReadPastEndFails)
{
    BitWriter writer;
    writer.write(0x7, 3);
    auto bytes = writer.take();
    BitReader reader(bytes.data(), bytes.size());
    uint64_t v;
    ASSERT_TRUE(reader.read(8, &v));  // padding bits fill the byte
    EXPECT_FALSE(reader.read(1, &v));
}

TEST(BitIoTest, AlignByte)
{
    BitWriter writer;
    writer.write(1, 1);
    writer.alignByte();
    writer.write(0xab, 8);
    auto bytes = writer.take();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[1], 0xab);

    BitReader reader(bytes.data(), bytes.size());
    uint64_t v;
    ASSERT_TRUE(reader.read(1, &v));
    reader.alignByte();
    ASSERT_TRUE(reader.read(8, &v));
    EXPECT_EQ(v, 0xabu);
}

/** Property: any sequence of (value, width) writes reads back intact. */
TEST(BitIoTest, RandomRoundTrip)
{
    Rng rng(99);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<std::pair<uint64_t, int>> items;
        BitWriter writer;
        for (int i = 0; i < 200; ++i) {
            int width = 1 + static_cast<int>(rng.below(57));
            uint64_t value = rng.next() &
                ((width == 64) ? ~0ull : (1ull << width) - 1);
            items.emplace_back(value, width);
            writer.write(value, width);
        }
        auto bytes = writer.take();
        BitReader reader(bytes.data(), bytes.size());
        for (auto [value, width] : items) {
            uint64_t v;
            ASSERT_TRUE(reader.read(width, &v));
            EXPECT_EQ(v, value);
        }
    }
}

} // namespace
} // namespace mithril
