#include "common/status.h"

#include <gtest/gtest.h>

namespace mithril {
namespace {

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::kOk);
    EXPECT_EQ(s.toString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status s = Status::corruptData("bad page");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::kCorruptData);
    EXPECT_EQ(s.message(), "bad page");
    EXPECT_EQ(s.toString(), "CORRUPT_DATA: bad page");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes)
{
    EXPECT_EQ(Status::invalidArgument("x").code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(Status::capacityExceeded("x").code(),
              StatusCode::kCapacityExceeded);
    EXPECT_EQ(Status::notFound("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(Status::unsupported("x").code(), StatusCode::kUnsupported);
    EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
    EXPECT_EQ(Status::dataLoss("x").code(), StatusCode::kDataLoss);
    EXPECT_EQ(Status::resourceExhausted("x").code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
}

Status
helperPropagates(bool fail)
{
    MITHRIL_RETURN_IF_ERROR(
        fail ? Status::notFound("inner") : Status::ok());
    return Status::invalidArgument("fellthrough");
}

TEST(StatusTest, ReturnIfErrorPropagates)
{
    EXPECT_EQ(helperPropagates(true).code(), StatusCode::kNotFound);
    EXPECT_EQ(helperPropagates(false).code(),
              StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNames)
{
    EXPECT_STREQ(statusCodeName(StatusCode::kOk), "OK");
    EXPECT_STREQ(statusCodeName(StatusCode::kCapacityExceeded),
                 "CAPACITY_EXCEEDED");
    EXPECT_STREQ(statusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
    EXPECT_STREQ(statusCodeName(StatusCode::kResourceExhausted),
                 "RESOURCE_EXHAUSTED");
    EXPECT_STREQ(statusCodeName(StatusCode::kFailedPrecondition),
                 "FAILED_PRECONDITION");
}

} // namespace
} // namespace mithril
