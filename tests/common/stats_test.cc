#include "common/stats.h"

#include <gtest/gtest.h>

namespace mithril {
namespace {

TEST(DistributionTest, TracksSummary)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.record(3.0);
    d.record(1.0);
    d.record(2.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(HistogramTest, BucketsValues)
{
    Histogram h({1.0, 2.0, 4.0});
    h.record(0.5);   // < 1
    h.record(1.0);   // [1,2)
    h.record(1.9);   // [1,2)
    h.record(3.0);   // [2,4)
    h.record(100.0); // >= 4
    ASSERT_EQ(h.buckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, RenderContainsBars)
{
    Histogram h({1.0});
    h.record(0.0);
    h.record(5.0);
    std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find("< 1"), std::string::npos);
}

TEST(StatSetTest, AccumulatesAndReads)
{
    StatSet stats;
    EXPECT_EQ(stats.get("missing"), 0u);
    stats.add("pages");
    stats.add("pages", 4);
    EXPECT_EQ(stats.get("pages"), 5u);
    stats.clear();
    EXPECT_EQ(stats.get("pages"), 0u);
}

TEST(StatSetTest, ToStringListsAll)
{
    StatSet stats;
    stats.add("a", 1);
    stats.add("b", 2);
    EXPECT_EQ(stats.toString(), "a 1\nb 2\n");
}

} // namespace
} // namespace mithril
