#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace mithril {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng rng(1);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.below(bound), bound);
        }
    }
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    constexpr int kSamples = 10000;
    for (int i = 0; i < kSamples; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(RngTest, ChanceProbability)
{
    Rng rng(4);
    int hits = 0;
    constexpr int kSamples = 10000;
    for (int i = 0; i < kSamples; ++i) {
        if (rng.chance(0.25)) {
            ++hits;
        }
    }
    EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.25, 0.03);
}

TEST(RngTest, SkewedBelowFavorsSmallIndices)
{
    Rng rng(5);
    constexpr uint64_t kN = 100;
    std::vector<int> counts(kN, 0);
    for (int i = 0; i < 20000; ++i) {
        ++counts[rng.skewedBelow(kN)];
    }
    // The bottom decile should receive far more mass than the top one.
    int low = 0, high = 0;
    for (int i = 0; i < 10; ++i) {
        low += counts[i];
        high += counts[kN - 1 - i];
    }
    EXPECT_GT(low, high * 2);
}

} // namespace
} // namespace mithril
