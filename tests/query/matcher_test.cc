#include "query/matcher.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace mithril::query {
namespace {

bool
matches(std::string_view query_text, std::string_view line)
{
    Query q;
    Status st = parseQuery(query_text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    SoftwareMatcher m(q);
    return m.matches(line);
}

TEST(MatcherTest, SinglePositiveToken)
{
    EXPECT_TRUE(matches("KERNEL", "RAS KERNEL INFO"));
    EXPECT_FALSE(matches("KERNEL", "RAS APP INFO"));
}

TEST(MatcherTest, TokenBoundariesAreExact)
{
    // Token semantics, not substring semantics.
    EXPECT_FALSE(matches("KERN", "RAS KERNEL INFO"));
    EXPECT_FALSE(matches("KERNELS", "RAS KERNEL INFO"));
}

TEST(MatcherTest, ConjunctionRequiresAll)
{
    EXPECT_TRUE(matches("RAS & INFO", "RAS KERNEL INFO"));
    EXPECT_FALSE(matches("RAS & FATAL", "RAS KERNEL INFO"));
}

TEST(MatcherTest, NegationVetoes)
{
    // Template 2 of Figure 1: RAS & KERNEL & INFO & !FATAL.
    EXPECT_TRUE(matches("RAS & KERNEL & INFO & !FATAL",
                        "x RAS KERNEL INFO cache parity"));
    EXPECT_FALSE(matches("RAS & KERNEL & INFO & !FATAL",
                         "x RAS KERNEL INFO FATAL panic"));
}

TEST(MatcherTest, UnionAcceptsAnySet)
{
    EXPECT_TRUE(matches("(a & b) | (c & d)", "c q d"));
    EXPECT_FALSE(matches("(a & b) | (c & d)", "a d"));
}

TEST(MatcherTest, PureNegativeSet)
{
    EXPECT_TRUE(matches("!missing", "some other line"));
    EXPECT_FALSE(matches("!present", "present here"));
}

TEST(MatcherTest, RepeatedTokenInLineCountsOnce)
{
    // "a a" must not satisfy "a & b".
    EXPECT_FALSE(matches("a & b", "a a a"));
    EXPECT_TRUE(matches("a & b", "a b a"));
}

TEST(MatcherTest, EmptyLine)
{
    EXPECT_FALSE(matches("a", ""));
    EXPECT_TRUE(matches("!a", ""));
}

TEST(MatcherTest, NegativeAfterPositiveStillVetoes)
{
    // The violating token appears after all positives are satisfied;
    // matchers must not early-exit.
    EXPECT_FALSE(matches("a & !z", "a b c z"));
}

TEST(MatcherTest, ManyPositiveTermsAcrossWordBoundary)
{
    // > 64 positive terms exercises the multi-word found-bitmap path.
    std::string query_text;
    std::string line;
    for (int i = 0; i < 70; ++i) {
        if (i > 0) {
            query_text += " & ";
        }
        std::string tok = "tok" + std::to_string(i);
        query_text += tok;
        line += tok + " ";
    }
    EXPECT_TRUE(matches(query_text, line));
    // Remove one token: must fail.
    EXPECT_FALSE(matches(query_text + " & tok99", line));
}

TEST(MatcherTest, FilterLines)
{
    Query q;
    ASSERT_TRUE(parseQuery("FATAL", &q).isOk());
    SoftwareMatcher m(q);
    auto lines = m.filterLines("a FATAL x\nok line\nFATAL again\n");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "a FATAL x");
    EXPECT_EQ(lines[1], "FATAL again");
}

TEST(MatcherTest, SharedTokenAcrossSetsWithDifferentPolarity)
{
    // "err" required by set 1, forbidden by set 2.
    EXPECT_TRUE(matches("(err & disk) | (net & !err)", "err disk"));
    EXPECT_TRUE(matches("(err & disk) | (net & !err)", "net up"));
    EXPECT_FALSE(matches("(err & disk) | (net & !err)", "net err"));
}

} // namespace
} // namespace mithril::query
