#include "query/query.h"

#include <gtest/gtest.h>

namespace mithril::query {
namespace {

TEST(QueryTest, AllOfBuildsSingleSet)
{
    std::vector<std::string> tokens{"a", "b"};
    Query q = Query::allOf(tokens);
    ASSERT_EQ(q.sets().size(), 1u);
    EXPECT_EQ(q.sets()[0].terms.size(), 2u);
    EXPECT_FALSE(q.sets()[0].terms[0].negated);
    EXPECT_TRUE(q.validate().isOk());
}

TEST(QueryTest, AnyOfBuildsOneSetPerToken)
{
    std::vector<std::string> tokens{"a", "b", "c"};
    Query q = Query::anyOf(tokens);
    EXPECT_EQ(q.sets().size(), 3u);
    EXPECT_EQ(q.termCount(), 3u);
}

TEST(QueryTest, UnionOfConcatenatesSets)
{
    std::vector<std::string> ab{"a", "b"};
    std::vector<std::string> cd{"c", "d"};
    std::vector<Query> queries{Query::allOf(ab), Query::allOf(cd)};
    Query joined = Query::unionOf(queries);
    EXPECT_EQ(joined.sets().size(), 2u);
}

TEST(QueryTest, DistinctTokensDeduplicates)
{
    Query q({{{{"a", false}, {"b", true}}}, {{{"a", true}, {"c", false}}}});
    auto tokens = q.distinctTokens();
    EXPECT_EQ(tokens, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(QueryValidateTest, EmptyQueryInvalid)
{
    Query q;
    EXPECT_FALSE(q.validate().isOk());
}

TEST(QueryValidateTest, EmptySetInvalid)
{
    Query q({IntersectionSet{}});
    EXPECT_FALSE(q.validate().isOk());
}

TEST(QueryValidateTest, EmptyTokenInvalid)
{
    Query q({{{{"", false}}}});
    EXPECT_FALSE(q.validate().isOk());
}

TEST(QueryValidateTest, ConflictingPolarityInvalid)
{
    Query q({{{{"a", false}, {"a", true}}}});
    EXPECT_EQ(q.validate().code(), StatusCode::kInvalidArgument);
}

TEST(QueryValidateTest, PureNegativeControlledByFlag)
{
    Query q({{{{"a", true}}}});
    EXPECT_TRUE(q.validate(true).isOk());
    EXPECT_EQ(q.validate(false).code(), StatusCode::kUnsupported);
}

TEST(QueryToStringTest, RendersEquationOneShape)
{
    // (!A & B & C) | (!D & !E & F & G), Equation 1 of the paper.
    Query q({{{{"A", true}, {"B", false}, {"C", false}}},
             {{{"D", true}, {"E", true}, {"F", false}, {"G", false}}}});
    EXPECT_EQ(q.toString(),
              "(!\"A\" & \"B\" & \"C\") | "
              "(!\"D\" & !\"E\" & \"F\" & \"G\")");
}

TEST(QueryTest, PositiveCount)
{
    IntersectionSet s{{{"a", false}, {"b", true}, {"c", false}}};
    EXPECT_EQ(s.positiveCount(), 2u);
}

} // namespace
} // namespace mithril::query
