#include "query/parser.h"

#include <gtest/gtest.h>

namespace mithril::query {
namespace {

Query
mustParse(std::string_view text)
{
    Query q;
    Status st = parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << text << " -> " << st.toString();
    return q;
}

TEST(ParserTest, SingleToken)
{
    Query q = mustParse("error");
    ASSERT_EQ(q.sets().size(), 1u);
    ASSERT_EQ(q.sets()[0].terms.size(), 1u);
    EXPECT_EQ(q.sets()[0].terms[0].token, "error");
    EXPECT_FALSE(q.sets()[0].terms[0].negated);
}

TEST(ParserTest, QuotedTokenPreservesSpecials)
{
    Query q = mustParse("\"pbs_mom:\" AND NOT \"failed\"");
    ASSERT_EQ(q.sets().size(), 1u);
    EXPECT_EQ(q.sets()[0].terms[0].token, "pbs_mom:");
    EXPECT_TRUE(q.sets()[0].terms[1].negated);
}

TEST(ParserTest, SymbolsAndKeywordsEquivalent)
{
    EXPECT_EQ(mustParse("a & !b | c"), mustParse("a AND NOT b OR c"));
}

TEST(ParserTest, KeywordsCaseInsensitive)
{
    EXPECT_EQ(mustParse("a and not b"), mustParse("a AND NOT b"));
}

TEST(ParserTest, ImplicitAnd)
{
    EXPECT_EQ(mustParse("a b c"), mustParse("a & b & c"));
}

TEST(ParserTest, OrSplitsSets)
{
    Query q = mustParse("(a & b) | (c & d)");
    EXPECT_EQ(q.sets().size(), 2u);
}

TEST(ParserTest, NestedParens)
{
    Query q = mustParse("((a))");
    EXPECT_EQ(q.sets().size(), 1u);
}

TEST(ParserTest, DistributesAndOverOr)
{
    // a & (b | c)  ==>  (a & b) | (a & c)
    Query q = mustParse("a & (b | c)");
    ASSERT_EQ(q.sets().size(), 2u);
    EXPECT_EQ(q.sets()[0].terms.size(), 2u);
    EXPECT_EQ(q.sets()[1].terms.size(), 2u);
}

TEST(ParserTest, DeMorganPushesNegation)
{
    // !(a | b)  ==>  !a & !b
    Query q = mustParse("!(a | b)");
    ASSERT_EQ(q.sets().size(), 1u);
    EXPECT_EQ(q.sets()[0].terms.size(), 2u);
    EXPECT_TRUE(q.sets()[0].terms[0].negated);
    EXPECT_TRUE(q.sets()[0].terms[1].negated);
}

TEST(ParserTest, DeMorganOverAndMakesUnion)
{
    // !(a & b)  ==>  !a | !b
    Query q = mustParse("!(a & b)");
    EXPECT_EQ(q.sets().size(), 2u);
}

TEST(ParserTest, DoubleNegation)
{
    Query q = mustParse("!!a");
    ASSERT_EQ(q.sets().size(), 1u);
    EXPECT_FALSE(q.sets()[0].terms[0].negated);
}

TEST(ParserTest, DuplicateTermsDeduped)
{
    Query q = mustParse("a & a & a");
    ASSERT_EQ(q.sets().size(), 1u);
    EXPECT_EQ(q.sets()[0].terms.size(), 1u);
}

TEST(ParserTest, ContradictorySetDropped)
{
    // (a & !a) | b leaves only b.
    Query q = mustParse("(a & !a) | b");
    ASSERT_EQ(q.sets().size(), 1u);
    EXPECT_EQ(q.sets()[0].terms[0].token, "b");
}

TEST(ParserTest, FullyContradictoryQueryRejected)
{
    Query q;
    EXPECT_FALSE(parseQuery("a & !a", &q).isOk());
}

TEST(ParserTest, RoundTripsThroughToString)
{
    Query q = mustParse("(\"A\" & !\"B\") | \"C\"");
    Query q2 = mustParse(q.toString());
    EXPECT_EQ(q, q2);
}

TEST(ParserErrorTest, EmptyInput)
{
    Query q;
    EXPECT_EQ(parseQuery("", &q).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(parseQuery("   ", &q).code(), StatusCode::kInvalidArgument);
}

TEST(ParserErrorTest, UnbalancedParens)
{
    Query q;
    EXPECT_FALSE(parseQuery("(a", &q).isOk());
    EXPECT_FALSE(parseQuery("a)", &q).isOk());
}

TEST(ParserErrorTest, DanglingOperators)
{
    Query q;
    EXPECT_FALSE(parseQuery("a &", &q).isOk());
    EXPECT_FALSE(parseQuery("| a", &q).isOk());
    EXPECT_FALSE(parseQuery("!", &q).isOk());
}

TEST(ParserErrorTest, UnterminatedQuote)
{
    Query q;
    EXPECT_FALSE(parseQuery("\"abc", &q).isOk());
}

TEST(ParserErrorTest, DnfExplosionCapped)
{
    // (a0|b0) & (a1|b1) & ... doubles the set count per clause; 10
    // clauses = 1024 sets > kMaxDnfSets.
    std::string text;
    for (int i = 0; i < 10; ++i) {
        if (i > 0) {
            text += " & ";
        }
        text += "(a" + std::to_string(i) + " | b" + std::to_string(i) + ")";
    }
    Query q;
    EXPECT_EQ(parseQuery(text, &q).code(), StatusCode::kCapacityExceeded);
}

} // namespace
} // namespace mithril::query
