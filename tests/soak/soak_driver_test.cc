/**
 * @file
 * soak::SoakDriver — determinism (the property the SLO gate rests
 * on), admission-control accounting, shape parsing, and capacity
 * estimation.
 */
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "soak/soak_driver.h"

namespace mithril::soak {
namespace {

/** Serializes every observable field so two reports can be compared
 *  byte for byte. */
std::string
serialize(const SoakReport &r)
{
    std::ostringstream out;
    out << r.offered_lines << '|' << r.accepted_lines << '|'
        << r.dropped_lines << '|' << r.offered_queries << '|'
        << r.completed_queries << '|' << r.drop_rate << '|'
        << r.ingest_e2e_ps.p50 << '|' << r.ingest_e2e_ps.p90 << '|'
        << r.ingest_e2e_ps.p99 << '|' << r.ingest_e2e_ps.p999 << '|'
        << r.query_e2e_ps.p50 << '|' << r.query_e2e_ps.p90 << '|'
        << r.query_e2e_ps.p99 << '|' << r.query_e2e_ps.p999 << '|'
        << r.matched_lines << '\n';
    for (const SoakSnapshot &s : r.series) {
        out << s.t_ps << ',' << s.offered_lines << ','
            << s.accepted_lines << ',' << s.dropped_lines << ','
            << s.queries_done << ',' << s.ingest_p99_ps << '\n';
    }
    return out.str();
}

SoakConfig
shortConfig(ArrivalShape shape, uint64_t seed)
{
    SoakConfig cfg;
    cfg.seed = seed;
    cfg.shape = shape;
    cfg.duration_s = 0.02;
    cfg.ingest_lps = 300000.0;
    cfg.query_qps = 200.0;
    cfg.shards = 2;
    cfg.threads = 2;
    cfg.batch_lines = 32;
    cfg.snapshot_every_s = 0.005;
    return cfg;
}

TEST(SoakDriver, SameSeedReproducesReportByteForByte)
{
    for (ArrivalShape shape : {ArrivalShape::kSteady,
                               ArrivalShape::kBursty,
                               ArrivalShape::kDiurnal}) {
        SoakDriver a(shortConfig(shape, 5));
        SoakDriver b(shortConfig(shape, 5));
        SoakReport ra, rb;
        ASSERT_TRUE(a.run(&ra).isOk());
        ASSERT_TRUE(b.run(&rb).isOk());
        EXPECT_GT(ra.offered_lines, 0u);
        EXPECT_EQ(serialize(ra), serialize(rb))
            << "shape " << shapeName(shape);
    }
}

TEST(SoakDriver, WorkerCountDoesNotChangeTheReport)
{
    SoakConfig one = shortConfig(ArrivalShape::kBursty, 9);
    one.threads = 1;
    SoakConfig many = shortConfig(ArrivalShape::kBursty, 9);
    many.threads = 4;
    SoakDriver a(one), b(many);
    SoakReport ra, rb;
    ASSERT_TRUE(a.run(&ra).isOk());
    ASSERT_TRUE(b.run(&rb).isOk());
    EXPECT_EQ(serialize(ra), serialize(rb));
}

TEST(SoakDriver, DifferentSeedsProduceDifferentSchedules)
{
    SoakDriver a(shortConfig(ArrivalShape::kSteady, 1));
    SoakDriver b(shortConfig(ArrivalShape::kSteady, 2));
    SoakReport ra, rb;
    ASSERT_TRUE(a.run(&ra).isOk());
    ASSERT_TRUE(b.run(&rb).isOk());
    EXPECT_NE(serialize(ra), serialize(rb));
}

TEST(SoakDriver, AccountingIsConsistent)
{
    SoakDriver driver(shortConfig(ArrivalShape::kBursty, 3));
    SoakReport r;
    ASSERT_TRUE(driver.run(&r).isOk());
    EXPECT_EQ(r.offered_lines, r.accepted_lines + r.dropped_lines);
    EXPECT_GE(r.offered_queries, r.completed_queries);
    EXPECT_GE(r.drop_rate, 0.0);
    EXPECT_LE(r.drop_rate, 1.0);
    // Every accepted line got an end-to-end sample.
    EXPECT_EQ(driver.metrics()
                  .quantileHistogram("soak.ingest_e2e.sim_ps")
                  .count(),
              r.accepted_lines);
    // The service really ingested what the driver accepted.
    EXPECT_EQ(driver.service().lineCount(), r.accepted_lines);
    // Quantiles are monotone and the snapshot series is cumulative.
    EXPECT_LE(r.ingest_e2e_ps.p50, r.ingest_e2e_ps.p99);
    EXPECT_LE(r.ingest_e2e_ps.p99, r.ingest_e2e_ps.p999);
    uint64_t prev = 0;
    for (const SoakSnapshot &s : r.series) {
        EXPECT_GE(s.offered_lines, prev);
        prev = s.offered_lines;
        EXPECT_EQ(s.offered_lines,
                  s.accepted_lines + s.dropped_lines);
    }
}

TEST(SoakDriver, OverloadTriggersAdmissionDrops)
{
    SoakConfig cfg = shortConfig(ArrivalShape::kSteady, 4);
    // Offer far beyond any plausible capacity with a tight lag bound:
    // admission control must shed rather than queue unboundedly.
    cfg.ingest_lps = 1e9;
    cfg.admission_max_lag = SimTime::microseconds(100);
    SoakDriver driver(cfg);
    SoakReport r;
    ASSERT_TRUE(driver.run(&r).isOk());
    EXPECT_GT(r.dropped_lines, 0u);
    EXPECT_GT(r.drop_rate, 0.5);
    EXPECT_GT(r.accepted_lines, 0u) << "some lines still land";
}

TEST(SoakShape, ParsesKnownNamesAndRejectsUnknown)
{
    ArrivalShape shape = ArrivalShape::kSteady;
    EXPECT_TRUE(parseShape("bursty", &shape).isOk());
    EXPECT_EQ(shape, ArrivalShape::kBursty);
    EXPECT_TRUE(parseShape("diurnal", &shape).isOk());
    EXPECT_EQ(shape, ArrivalShape::kDiurnal);
    EXPECT_TRUE(parseShape("steady", &shape).isOk());
    EXPECT_EQ(shape, ArrivalShape::kSteady);
    Status st = parseShape("sinusoidal", &shape);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    for (ArrivalShape s : {ArrivalShape::kSteady, ArrivalShape::kBursty,
                           ArrivalShape::kDiurnal}) {
        ArrivalShape round = ArrivalShape::kSteady;
        EXPECT_TRUE(parseShape(shapeName(s), &round).isOk());
        EXPECT_EQ(round, s);
    }
}

TEST(SoakCapacity, EstimateIsPositiveAndDeterministic)
{
    SoakConfig cfg = shortConfig(ArrivalShape::kSteady, 6);
    double a = 0.0, b = 0.0;
    ASSERT_TRUE(estimateIngestCapacity(cfg, &a).isOk());
    ASSERT_TRUE(estimateIngestCapacity(cfg, &b).isOk());
    EXPECT_GT(a, 0.0);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace mithril::soak
