#include "baseline/splunk_lite.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace mithril::baseline {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

/** Corpus with a rare token confined to one bucket region. */
std::string
bucketedCorpus()
{
    std::string text;
    for (int i = 0; i < 5000; ++i) {
        text += "common filler line number " + std::to_string(i) + "\n";
    }
    text += "the needle RARETOKEN appears here\n";
    for (int i = 0; i < 5000; ++i) {
        text += "more filler content line " + std::to_string(i) + "\n";
    }
    return text;
}

TEST(SplunkLiteTest, IngestBuildsIndex)
{
    SplunkLite engine;
    engine.ingest("a b\nc d\n");
    EXPECT_EQ(engine.lineCount(), 2u);
    EXPECT_GT(engine.indexBytes(), 0u);
}

TEST(SplunkLiteTest, IndexPrunesBucketsForRareTokens)
{
    SplunkLite engine;
    engine.ingest(bucketedCorpus());
    IndexedResult r = engine.runQuery(mustParse("RARETOKEN"));
    EXPECT_EQ(r.matched_lines, 1u);
    EXPECT_GT(r.buckets_total, 5u);
    EXPECT_EQ(r.buckets_scanned, 1u);  // index isolates the bucket
}

TEST(SplunkLiteTest, CommonTokenScansManyBuckets)
{
    SplunkLite engine;
    engine.ingest(bucketedCorpus());
    IndexedResult r = engine.runQuery(mustParse("filler"));
    EXPECT_EQ(r.buckets_scanned, r.buckets_total);
    EXPECT_EQ(r.matched_lines, 10000u);
}

TEST(SplunkLiteTest, PureNegativeQueriesCannotPrune)
{
    // "NOT x" requires scanning everything (Figure 16's slow cluster).
    SplunkLite engine;
    engine.ingest(bucketedCorpus());
    IndexedResult r = engine.runQuery(mustParse("!RARETOKEN"));
    EXPECT_EQ(r.buckets_scanned, r.buckets_total);
    EXPECT_EQ(r.matched_lines, engine.lineCount() - 1);
}

TEST(SplunkLiteTest, PositivePlusNegativePrunesOnPositiveOnly)
{
    SplunkLite engine;
    engine.ingest(bucketedCorpus());
    IndexedResult r =
        engine.runQuery(mustParse("RARETOKEN & !needle"));
    EXPECT_EQ(r.buckets_scanned, 1u);
    EXPECT_EQ(r.matched_lines, 0u);  // 'needle' vetoes the only hit
}

TEST(SplunkLiteTest, MissingTokenShortCircuits)
{
    SplunkLite engine;
    engine.ingest(bucketedCorpus());
    IndexedResult r = engine.runQuery(mustParse("NEVERSEEN & filler"));
    EXPECT_EQ(r.buckets_scanned, 0u);
    EXPECT_EQ(r.matched_lines, 0u);
}

TEST(SplunkLiteTest, UnionPlansPerSet)
{
    SplunkLite engine;
    engine.ingest(bucketedCorpus());
    IndexedResult r =
        engine.runQuery(mustParse("RARETOKEN | NEVERSEEN"));
    EXPECT_EQ(r.matched_lines, 1u);
    EXPECT_EQ(r.buckets_scanned, 1u);
}

} // namespace
} // namespace mithril::baseline
