#include "baseline/grep_scan.h"

#include <gtest/gtest.h>

namespace mithril::baseline {
namespace {

TEST(GrepScanTest, CountsMatchingLines)
{
    GrepResult r = grepCount("error here\nok line\nerror again\n",
                             "error");
    EXPECT_EQ(r.matched_lines, 2u);
}

TEST(GrepScanTest, SubstringSemantics)
{
    // grep matches inside tokens — unlike the token filter.
    GrepResult r = grepCount("KERNELPANIC once\n", "KERNEL");
    EXPECT_EQ(r.matched_lines, 1u);
}

TEST(GrepScanTest, LineCountedOnceDespiteMultipleHits)
{
    GrepResult r = grepCount("abc abc abc\n", "abc");
    EXPECT_EQ(r.matched_lines, 1u);
}

TEST(GrepScanTest, EmptyPatternMatchesNothing)
{
    GrepResult r = grepCount("anything\n", "");
    EXPECT_EQ(r.matched_lines, 0u);
}

TEST(GrepScanTest, NoMatch)
{
    GrepResult r = grepCount("aaa\nbbb\n", "zzz");
    EXPECT_EQ(r.matched_lines, 0u);
}

TEST(GrepScanTest, MatchAtEndWithoutNewline)
{
    GrepResult r = grepCount("first\nlast token", "token");
    EXPECT_EQ(r.matched_lines, 1u);
}

TEST(GrepTokenCountTest, WholeTokenOnly)
{
    GrepResult sub = grepCount("KERNELPANIC\nKERNEL ok\n", "KERNEL");
    GrepResult tok = grepTokenCount("KERNELPANIC\nKERNEL ok\n",
                                    "KERNEL");
    EXPECT_EQ(sub.matched_lines, 2u);
    EXPECT_EQ(tok.matched_lines, 1u);
}

} // namespace
} // namespace mithril::baseline
