#include "baseline/scan_db.h"

#include <gtest/gtest.h>

#include "loggen/log_generator.h"
#include "query/parser.h"

namespace mithril::baseline {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

TEST(ScanDbTest, IngestCountsLinesAndBytes)
{
    ScanDb db;
    db.ingest("one two\nthree\n");
    EXPECT_EQ(db.lineCount(), 2u);
    EXPECT_EQ(db.rawBytes(), 14u);
}

TEST(ScanDbTest, BlocksAreCompressed)
{
    ScanDb db;
    std::string text;
    for (int i = 0; i < 5000; ++i) {
        text += "identical line for the compressor to chew on\n";
    }
    db.ingest(text);
    EXPECT_LT(db.compressedBytes(), db.rawBytes() / 4);
}

TEST(ScanDbTest, FullScanFindsMatches)
{
    ScanDb db;
    db.ingest("RAS KERNEL INFO\nRAS APP FATAL\nunrelated line\n");
    ScanResult r = db.runQuery(mustParse("RAS & !FATAL"));
    EXPECT_EQ(r.matched_lines, 1u);
    EXPECT_EQ(r.scanned_lines, 3u);
    EXPECT_EQ(r.scanned_bytes, db.rawBytes());
}

TEST(ScanDbTest, EveryQueryScansWholeTable)
{
    ScanDb db;
    std::string text;
    for (int i = 0; i < 10000; ++i) {
        text += "line " + std::to_string(i) + " filler tokens\n";
    }
    db.ingest(text);
    ScanResult hit = db.runQuery(mustParse("filler"));
    ScanResult miss = db.runQuery(mustParse("nonexistent"));
    EXPECT_EQ(hit.scanned_lines, miss.scanned_lines);
    EXPECT_EQ(hit.matched_lines, 10000u);
    EXPECT_EQ(miss.matched_lines, 0u);
}

TEST(ScanDbTest, BatchAppliesAllQueries)
{
    ScanDb db;
    db.ingest("alpha x\nbeta y\ngamma z\n");
    std::vector<query::Query> batch{mustParse("alpha"),
                                    mustParse("beta")};
    ScanResult r = db.runBatch(batch);
    EXPECT_EQ(r.matched_lines, 2u);
    EXPECT_EQ(r.scanned_lines, 3u);
}

TEST(ScanDbDictionaryTest, SameCountsAsTextMode)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
    std::string text = gen.generate(1 << 20);

    ScanDb text_db(ScanDbMode::kCompressedText);
    ScanDb dict_db(ScanDbMode::kDictionary);
    text_db.ingest(text);
    dict_db.ingest(text);
    EXPECT_EQ(text_db.lineCount(), dict_db.lineCount());

    const char *queries[] = {
        "RAS", "KERNEL & INFO", "FATAL & !INFO", "!KERNEL",
        "missingtoken", "missingtoken | RAS", "!missingtoken",
        "(ERROR & cache) | (WARNING & link)",
    };
    for (const char *qt : queries) {
        query::Query q = mustParse(qt);
        ScanResult a = text_db.runQuery(q);
        ScanResult b = dict_db.runQuery(q);
        EXPECT_EQ(a.matched_lines, b.matched_lines) << qt;
        EXPECT_EQ(a.scanned_lines, b.scanned_lines) << qt;
    }
}

TEST(ScanDbDictionaryTest, DictionaryColumnIsCompact)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[3]);
    std::string text = gen.generate(1 << 20);
    ScanDb dict_db(ScanDbMode::kDictionary);
    dict_db.ingest(text);
    // Varint token ids beat the raw text by a wide margin on
    // repetitive logs (the dictionary-encoding rationale).
    EXPECT_LT(dict_db.compressedBytes(), dict_db.rawBytes() / 3);
}

TEST(ScanDbDictionaryTest, DictionaryScanIsFasterOnBigBatches)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[1]);
    std::string text = gen.generate(2 << 20);
    ScanDb text_db(ScanDbMode::kCompressedText);
    ScanDb dict_db(ScanDbMode::kDictionary);
    text_db.ingest(text);
    dict_db.ingest(text);

    std::vector<query::Query> batch;
    for (int i = 0; i < 8; ++i) {
        batch.push_back(mustParse("error & link & tok" +
                                  std::to_string(i)));
    }
    ScanResult a = text_db.runBatch(batch);
    ScanResult b = dict_db.runBatch(batch);
    EXPECT_EQ(a.matched_lines, b.matched_lines);
    // Integer comparison + no re-tokenization: the dictionary column
    // should be clearly faster (this is a smoke-level bound).
    EXPECT_LT(b.elapsed_seconds, a.elapsed_seconds);
}

TEST(ScanDbTest, ThroughputDegradesWithBatchSize)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
    ScanDb db;
    db.ingest(gen.generate(2 << 20));

    std::vector<query::Query> one{mustParse("KERNEL & RAS")};
    std::vector<query::Query> eight;
    for (int i = 0; i < 8; ++i) {
        eight.push_back(mustParse("KERNEL & RAS & tok" +
                                  std::to_string(i)));
    }
    ScanResult r1 = db.runBatch(one);
    ScanResult r8 = db.runBatch(eight);
    // Eight matchers per line must cost measurably more than one
    // (Table 6's MonetDB1 vs MonetDB8 trend).
    EXPECT_GT(r8.elapsed_seconds, r1.elapsed_seconds);
}

} // namespace
} // namespace mithril::baseline
