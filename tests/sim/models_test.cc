#include <gtest/gtest.h>

#include "common/simtime.h"
#include "sim/perf_model.h"
#include "sim/power_model.h"
#include "sim/resource_model.h"

namespace mithril::sim {
namespace {

TEST(SimTimeTest, Conversions)
{
    EXPECT_DOUBLE_EQ(SimTime::seconds(1.5).toSeconds(), 1.5);
    EXPECT_DOUBLE_EQ(SimTime::microseconds(100).toSeconds(), 100e-6);
    // 200 cycles at 200 MHz = 1 us.
    EXPECT_DOUBLE_EQ(SimTime::cycles(200, 200e6).toMicroseconds(), 1.0);
    // 3.1 GB over 3.1 GB/s = 1 s.
    EXPECT_NEAR(SimTime::transfer(3100000000ull, 3.1e9).toSeconds(),
                1.0, 1e-9);
}

TEST(SimTimeTest, ArithmeticAndMax)
{
    SimTime a = SimTime::seconds(1);
    SimTime b = SimTime::seconds(2);
    EXPECT_DOUBLE_EQ((a + b).toSeconds(), 3.0);
    EXPECT_EQ(SimTime::max(a, b), b);
    EXPECT_LT(a, b);
}

TEST(SimTimeTest, ThroughputHelper)
{
    EXPECT_DOUBLE_EQ(throughputBps(1000, SimTime::seconds(2)), 500.0);
    EXPECT_DOUBLE_EQ(throughputBps(1000, SimTime()), 0.0);
}

TEST(ResourceModelTest, Table2NumbersPresent)
{
    ResourceModel model;
    ASSERT_EQ(model.modules().size(), 5u);
    EXPECT_EQ(model.modules()[0].luts, 4245u);       // decompressor
    EXPECT_EQ(model.modules()[2].luts, 30334u);      // filter
    EXPECT_EQ(model.pipelineCost().luts, 61698u);
    EXPECT_EQ(model.totalCost().luts, 225793u);
    EXPECT_EQ(model.totalCost().ramb36, 430u);
}

TEST(ResourceModelTest, ComponentSumNearPipeline)
{
    // Components sum above the synthesized pipeline count would mean
    // the ledger is inconsistent; glue means the pipeline exceeds...
    // here the sum of components lands within 30% of the pipeline.
    ResourceModel model;
    ModuleCost sum = model.pipelineComponentSum();
    double ratio = static_cast<double>(sum.luts) /
                   model.pipelineCost().luts;
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.3);
}

TEST(ResourceModelTest, FourPipelinesNeedTwoVc707s)
{
    ResourceModel model;
    // ~78K LUTs of PCIe/flash/Aurora infrastructure per board in the
    // prototype (Total - 2x pipelines + margin).
    uint32_t infra = model.totalCost().luts -
                     2 * model.pipelineCost().luts;
    uint32_t per_board = model.pipelinesFitting(
        ResourceModel::vc707(), infra);
    // The prototype built 2 per board; the pure-LUT bound allows one
    // more before routing/timing margins, so accept 2-3.
    EXPECT_GE(per_board, 2u);
    EXPECT_LE(per_board, 3u);
}

TEST(ResourceModelTest, Table4EfficiencyOrdering)
{
    auto cores = ResourceModel::compressionCores();
    ASSERT_EQ(cores.size(), 4u);
    double best_other = 0;
    double lzah = 0;
    for (const CompressionCore &core : cores) {
        if (core.name == "LZAH") {
            lzah = core.gbpsPerKlut();
        } else {
            best_other = std::max(best_other, core.gbpsPerKlut());
        }
    }
    // LZAH: 0.8 GB/s/KLUT, ~3x better than the best alternative.
    EXPECT_NEAR(lzah, 0.8, 0.01);
    EXPECT_GT(lzah, best_other * 2.5);
}

TEST(ResourceModelTest, HareComparisonOrderOfMagnitude)
{
    // Section 7.4.3: ~19 vs ~145 KLUT per GB/s.
    EXPECT_NEAR(ResourceModel::mithrilKlutPerGbps(), 19.3, 1.0);
    EXPECT_NEAR(ResourceModel::hareKlutPerGbps(), 141.2, 5.0);
    EXPECT_GT(ResourceModel::hareKlutPerGbps() /
                  ResourceModel::mithrilKlutPerGbps(),
              6.0);
}

TEST(PowerModelTest, Table8Totals)
{
    PowerModel model;
    EXPECT_DOUBLE_EQ(model.mithrilogTotal(), 150.0);
    EXPECT_DOUBLE_EQ(model.softwareTotal(), 170.0);
}

TEST(PowerModelTest, EfficiencyGainTracksThroughputRatio)
{
    PowerModel model;
    // 11.5 GB/s modeled vs 0.65 GB/s software: gain ~ (11.5/150) /
    // (0.65/170) ~ 20x.
    double gain = model.efficiencyGain(11.5e9, 0.65e9);
    EXPECT_NEAR(gain, 20.05, 0.5);
    EXPECT_EQ(model.efficiencyGain(0, 1), 0.0);
}

TEST(PerfModelTest, PaperDesignPointBounds)
{
    PerfInputs in;  // defaults: 4 pipelines, 16 B, 200 MHz
    // Decompressor bound: 4 x 3.2 GB/s = 12.8 GB/s.
    EXPECT_NEAR(decompressorBound(in), 12.8e9, 1e6);
    // Filter bound at 50% useful ratio: 2 filters cover the 2x
    // amplification exactly -> 12.8 GB/s of raw text.
    EXPECT_NEAR(filterBound(in), 12.8e9, 1e6);
    // Storage bound: 4.8 GB/s x 6 = 28.8 GB/s; not the bottleneck.
    EXPECT_NEAR(storageBound(in), 28.8e9, 1e6);
    EXPECT_NEAR(modeledThroughput(in), 12.8e9, 1e6);
}

TEST(PerfModelTest, LowCompressionShiftsBottleneckToStorage)
{
    PerfInputs in;
    in.compression_ratio = 2.0;  // BGL2-like
    EXPECT_NEAR(modeledThroughput(in), 9.6e9, 1e6);
    EXPECT_LT(modeledThroughput(in), decompressorBound(in));
}

TEST(PerfModelTest, WidthAblationFavors16Bytes)
{
    // Throughput per LUT across datapath widths: the 16-byte design
    // point the paper chose should beat 8 and 32 bytes under the
    // padding statistics of Figure 13 (~50% useful at 16 B; 8 B wastes
    // pipelines, 32 B wastes padding).
    auto efficiency = [](size_t width, double useful) {
        PerfInputs in;
        in.datapath_bytes = width;
        in.useful_ratio = useful;
        in.compression_ratio = 6.0;
        return modeledThroughput(in) / pipelineLutsAtWidth(width);
    };
    double e8 = efficiency(8, 0.70);
    double e16 = efficiency(16, 0.50);
    double e32 = efficiency(32, 0.28);
    EXPECT_GT(e16, e8);
    EXPECT_GT(e16, e32 * 0.99);
}

} // namespace
} // namespace mithril::sim
