/**
 * @file
 * The repository's core correctness property: the emulated hardware
 * filter and the reference SoftwareMatcher implement identical
 * semantics. Randomized queries over randomized log-like corpora must
 * agree line for line, across negations, unions, long tokens, and
 * batched execution.
 */
#include <gtest/gtest.h>

#include <set>

#include "accel/accelerator.h"
#include "common/rng.h"
#include "common/text.h"
#include "compress/lzah.h"
#include "loggen/log_generator.h"
#include "query/matcher.h"
#include "query/parser.h"

namespace mithril::accel {
namespace {

/** Vocabulary the random corpus and queries draw from (overlapping so
 *  queries actually hit). */
const char *kVocab[] = {
    "RAS", "KERNEL", "INFO", "FATAL", "APP", "error", "parity",
    "cache", "link", "up", "down", "node-7", "pbs_mom:", "retry",
    "0x1f", "alpha", "beta", "gamma", "averyveryverylongtokenover16b",
};

std::vector<std::string>
randomCorpus(Rng *rng, size_t lines)
{
    std::vector<std::string> out;
    for (size_t i = 0; i < lines; ++i) {
        std::string line;
        size_t n = rng->below(12);
        for (size_t t = 0; t < n; ++t) {
            if (t > 0) {
                line += ' ';
            }
            line += kVocab[rng->below(std::size(kVocab))];
        }
        out.push_back(std::move(line));
    }
    return out;
}

query::Query
randomQuery(Rng *rng)
{
    size_t sets = 1 + rng->below(4);
    std::vector<query::IntersectionSet> out;
    for (size_t s = 0; s < sets; ++s) {
        query::IntersectionSet set;
        size_t terms = 1 + rng->below(5);
        std::set<std::string> used;
        for (size_t t = 0; t < terms; ++t) {
            std::string tok = kVocab[rng->below(std::size(kVocab))];
            if (!used.insert(tok).second) {
                continue;  // polarity conflicts would be invalid
            }
            set.terms.push_back({tok, rng->chance(0.3)});
        }
        if (set.terms.empty()) {
            set.terms.push_back({"RAS", false});
        }
        out.push_back(std::move(set));
    }
    return query::Query(std::move(out));
}

std::vector<compress::Bytes>
makePages(const std::vector<std::string> &lines)
{
    compress::LzahPageEncoder enc;
    for (const std::string &line : lines) {
        EXPECT_NE(enc.addLine(line), compress::AddLineResult::kRejected);
    }
    enc.flush();
    return std::move(enc.pages());
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EquivalenceTest, AcceleratorAgreesWithSoftwareMatcher)
{
    Rng rng(GetParam());
    std::vector<std::string> corpus = randomCorpus(&rng, 300);
    auto pages = makePages(corpus);
    std::vector<compress::ByteView> page_views;
    for (const auto &p : pages) {
        page_views.emplace_back(p);
    }

    for (int trial = 0; trial < 8; ++trial) {
        query::Query q = randomQuery(&rng);
        ASSERT_TRUE(q.validate().isOk()) << q.toString();

        Accelerator accel;
        Status st = accel.configure(q);
        if (!st.isOk()) {
            // Capacity failures are legal (fallback path); skip here.
            ASSERT_EQ(st.code(), StatusCode::kCapacityExceeded)
                << st.toString();
            continue;
        }
        AccelResult result;
        ASSERT_TRUE(accel.process(page_views, Mode::kFilter,
                                  &result).isOk());

        query::SoftwareMatcher matcher(q);
        std::set<std::string> expected;
        uint64_t expected_count = 0;
        for (const std::string &line : corpus) {
            if (matcher.matches(line)) {
                expected.insert(line);
                ++expected_count;
            }
        }
        EXPECT_EQ(result.lines_kept, expected_count) << q.toString();
        for (const KeptLine &line : result.kept) {
            EXPECT_TRUE(expected.count(line.text))
                << q.toString() << " kept '" << line.text << "'";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16));

class EquivalenceOnRealisticLogsTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(EquivalenceOnRealisticLogsTest, SyntheticHpcCorpus)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[GetParam()]);
    std::string text = gen.generate(256 * 1024);

    std::vector<std::string> corpus;
    forEachLine(text, [&](std::string_view line) {
        corpus.emplace_back(line);
    });
    auto pages = makePages(corpus);
    std::vector<compress::ByteView> page_views;
    for (const auto &p : pages) {
        page_views.emplace_back(p);
    }

    const char *queries[] = {
        "RAS & KERNEL & !FATAL",
        "INFO | WARNING | error | failed",
        "\"cache\" & \"parity\"",
        "!INFO & !WARNING & !error",
        "(link & up) | (link & down) | !link",
    };
    for (const char *text_q : queries) {
        query::Query q;
        ASSERT_TRUE(query::parseQuery(text_q, &q).isOk());

        Accelerator accel;
        ASSERT_TRUE(accel.configure(q).isOk());
        AccelResult result;
        ASSERT_TRUE(accel.process(page_views, Mode::kFilter,
                                  &result).isOk());

        query::SoftwareMatcher matcher(q);
        uint64_t expected = 0;
        for (const std::string &line : corpus) {
            if (matcher.matches(line)) {
                ++expected;
            }
        }
        EXPECT_EQ(result.lines_kept, expected) << text_q;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, EquivalenceOnRealisticLogsTest,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace mithril::accel
