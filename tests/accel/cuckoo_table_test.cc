#include "accel/cuckoo_table.h"

#include <gtest/gtest.h>

#include <string>

namespace mithril::accel {
namespace {

TEST(CuckooTableTest, InsertAndLookup)
{
    CuckooTable table;
    ASSERT_TRUE(table.insert("KERNEL", 0, false).isOk());
    auto row = table.lookup("KERNEL");
    ASSERT_TRUE(row.has_value());
    const CuckooEntry &e = table.entry(*row);
    EXPECT_EQ(e.valid_mask, 1u);
    EXPECT_EQ(e.negative_mask, 0u);
    EXPECT_EQ(e.token_len, 6);
}

TEST(CuckooTableTest, MissingTokenNotFound)
{
    CuckooTable table;
    ASSERT_TRUE(table.insert("aaa", 0, false).isOk());
    EXPECT_FALSE(table.lookup("bbb").has_value());
    EXPECT_FALSE(table.lookup("aa").has_value());
    EXPECT_FALSE(table.lookup("aaaa").has_value());
}

TEST(CuckooTableTest, MergesFlagsForRepeatedToken)
{
    CuckooTable table;
    ASSERT_TRUE(table.insert("tok", 0, false).isOk());
    ASSERT_TRUE(table.insert("tok", 3, true).isOk());
    auto row = table.lookup("tok");
    ASSERT_TRUE(row.has_value());
    const CuckooEntry &e = table.entry(*row);
    EXPECT_EQ(e.valid_mask, 0b1001u);
    EXPECT_EQ(e.negative_mask, 0b1000u);
    EXPECT_EQ(table.occupiedCount(), 1u);
}

TEST(CuckooTableTest, ConflictingPolaritySameSetRejected)
{
    CuckooTable table;
    ASSERT_TRUE(table.insert("tok", 0, false).isOk());
    EXPECT_EQ(table.insert("tok", 0, true).code(),
              StatusCode::kInvalidArgument);
}

TEST(CuckooTableTest, LongTokenUsesOverflow)
{
    CuckooTable table;
    std::string long_token(45, 'x');
    long_token += "END";
    ASSERT_TRUE(table.insert(long_token, 1, false).isOk());
    EXPECT_GT(table.overflowUsed(), 0u);
    EXPECT_TRUE(table.lookup(long_token).has_value());
    // A 16-byte prefix of it must not match.
    EXPECT_FALSE(table.lookup(long_token.substr(0, 16)).has_value());
    // Same length, different tail word.
    std::string other = long_token;
    other.back() = 'Z';
    EXPECT_FALSE(table.lookup(other).has_value());
}

TEST(CuckooTableTest, Exactly16ByteTokenHasNoOverflow)
{
    CuckooTable table;
    std::string tok(16, 'q');
    ASSERT_TRUE(table.insert(tok, 0, false).isOk());
    EXPECT_EQ(table.overflowUsed(), 0u);
    EXPECT_TRUE(table.lookup(tok).has_value());
    EXPECT_FALSE(table.lookup(tok + "q").has_value());
}

TEST(CuckooTableTest, OverflowTableExhaustionFails)
{
    CuckooTable table;
    Status last = Status::ok();
    // Each 64-byte token takes 3 overflow words; kOverflowWords = 128.
    for (int i = 0; i < 60 && last.isOk(); ++i) {
        std::string tok = std::string(60, 'a') + std::to_string(i);
        last = table.insert(tok, 0, false);
    }
    EXPECT_EQ(last.code(), StatusCode::kCapacityExceeded);
}

TEST(CuckooTableTest, HandlesEvictionsUpToHalfLoad)
{
    // Cuckoo hashing succeeds w.h.p. below 0.5 load factor
    // (Section 4.2.1); 128 tokens into 256 rows must all place.
    CuckooTable table(256);
    for (int i = 0; i < 128; ++i) {
        std::string tok = "token-" + std::to_string(i);
        ASSERT_TRUE(table.insert(tok, i % 8, i % 2 == 0).isOk())
            << "failed at " << i;
    }
    EXPECT_DOUBLE_EQ(table.loadFactor(), 0.5);
    for (int i = 0; i < 128; ++i) {
        std::string tok = "token-" + std::to_string(i);
        auto row = table.lookup(tok);
        ASSERT_TRUE(row.has_value()) << tok;
        EXPECT_TRUE(table.entry(*row).valid_mask & (1u << (i % 8)));
    }
}

TEST(CuckooTableTest, OverfullTableEventuallyFails)
{
    CuckooTable table(4);
    Status last = Status::ok();
    int placed = 0;
    for (int i = 0; i < 20 && last.isOk(); ++i) {
        last = table.insert("t" + std::to_string(i), 0, false);
        if (last.isOk()) {
            ++placed;
        }
    }
    EXPECT_EQ(last.code(), StatusCode::kCapacityExceeded);
    EXPECT_LE(placed, 4);
}

TEST(CuckooTableTest, InvalidArguments)
{
    CuckooTable table;
    EXPECT_EQ(table.insert("", 0, false).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(table.insert("x", kFlagPairs, false).code(),
              StatusCode::kInvalidArgument);
}

TEST(CuckooTableTest, ColumnConstraintMatching)
{
    CuckooTable table;
    ASSERT_TRUE(table.insert("RAS", 0, false, /*column=*/6).isOk());
    EXPECT_TRUE(table.lookup("RAS", 6).has_value());
    EXPECT_FALSE(table.lookup("RAS", 5).has_value());
}

TEST(CuckooTableTest, ConflictingColumnRejected)
{
    CuckooTable table;
    ASSERT_TRUE(table.insert("RAS", 0, false, 6).isOk());
    EXPECT_EQ(table.insert("RAS", 1, false, 7).code(),
              StatusCode::kUnsupported);
}

} // namespace
} // namespace mithril::accel
