#include "accel/query_compiler.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace mithril::accel {
namespace {

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

TEST(QueryCompilerTest, CompilesSimpleQuery)
{
    FilterProgram program;
    ASSERT_TRUE(compileQuery(mustParse("RAS & KERNEL & !FATAL"),
                             &program).isOk());
    EXPECT_EQ(program.active_sets, 1u);
    auto row = program.table.lookup("RAS");
    ASSERT_TRUE(row.has_value());
    EXPECT_TRUE(program.table.entry(*row).valid_mask & 1);

    auto fatal = program.table.lookup("FATAL");
    ASSERT_TRUE(fatal.has_value());
    EXPECT_TRUE(program.table.entry(*fatal).negative_mask & 1);
}

TEST(QueryCompilerTest, QueryBitmapHasPositiveRowsOnly)
{
    FilterProgram program;
    ASSERT_TRUE(compileQuery(mustParse("a & b & !c"), &program).isOk());
    int bits = 0;
    for (uint64_t w : program.query_bitmaps[0]) {
        bits += __builtin_popcountll(w);
    }
    EXPECT_EQ(bits, 2);  // a and b, not c
    auto row_a = program.table.lookup("a");
    ASSERT_TRUE(row_a.has_value());
    EXPECT_TRUE(program.query_bitmaps[0][*row_a / 64] &
                (1ull << (*row_a % 64)));
}

TEST(QueryCompilerTest, BatchAssignsOwners)
{
    std::vector<query::Query> queries{
        mustParse("a | b"),       // 2 sets -> owner 0
        mustParse("c & d"),       // 1 set  -> owner 1
        mustParse("e | f | g"),   // 3 sets -> owner 2
    };
    FilterProgram program;
    ASSERT_TRUE(compileQueries(queries, &program).isOk());
    EXPECT_EQ(program.active_sets, 6u);
    EXPECT_EQ(program.set_owner[0], 0u);
    EXPECT_EQ(program.set_owner[1], 0u);
    EXPECT_EQ(program.set_owner[2], 1u);
    EXPECT_EQ(program.set_owner[3], 2u);
    EXPECT_EQ(program.set_owner[5], 2u);
}

TEST(QueryCompilerTest, TooManySetsRejected)
{
    // 9 single-token sets > 8 flag pairs.
    std::vector<query::Query> queries{
        mustParse("a | b | c | d | e | f | g | h | i")};
    FilterProgram program;
    EXPECT_EQ(compileQueries(queries, &program).code(),
              StatusCode::kCapacityExceeded);
}

TEST(QueryCompilerTest, ExactlyEightSetsAccepted)
{
    std::vector<query::Query> queries{
        mustParse("a | b | c | d | e | f | g | h")};
    FilterProgram program;
    EXPECT_TRUE(compileQueries(queries, &program).isOk());
    EXPECT_EQ(program.active_sets, 8u);
}

TEST(QueryCompilerTest, SharedTokenAcrossSets)
{
    FilterProgram program;
    ASSERT_TRUE(compileQuery(mustParse("(x & a) | (x & b)"),
                             &program).isOk());
    auto row = program.table.lookup("x");
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(program.table.entry(*row).valid_mask & 0b11, 0b11);
    EXPECT_EQ(program.table.occupiedCount(), 3u);
}

TEST(QueryCompilerTest, HundredsOfTermsFit)
{
    // FT-tree queries carry hundreds of terms (Section 1); 120 distinct
    // tokens across 8 sets must compile into the 256-row table.
    std::vector<query::IntersectionSet> sets(8);
    int tok = 0;
    for (auto &set : sets) {
        for (int i = 0; i < 15; ++i) {
            set.terms.push_back({"term" + std::to_string(tok++),
                                 i % 4 == 0});
        }
    }
    FilterProgram program;
    ASSERT_TRUE(compileQuery(query::Query(std::move(sets)),
                             &program).isOk());
    EXPECT_EQ(program.table.occupiedCount(), 120u);
}

TEST(QueryCompilerTest, EmptyBatchRejected)
{
    FilterProgram program;
    EXPECT_FALSE(compileQueries({}, &program).isOk());
}

} // namespace
} // namespace mithril::accel
