#include "accel/tokenizer.h"

#include <gtest/gtest.h>

namespace mithril::accel {
namespace {

TEST(TokenizerTest, EmitsTokensWithFlags)
{
    Tokenizer t;
    TokenizedLine out = t.run("RAS APP FATAL");
    ASSERT_EQ(out.tokens.size(), 3u);
    EXPECT_EQ(out.tokens[0].text, "RAS");
    EXPECT_FALSE(out.tokens[0].last_of_line);
    EXPECT_TRUE(out.tokens[2].last_of_line);
}

TEST(TokenizerTest, ColumnsIncrement)
{
    Tokenizer t;
    TokenizedLine out = t.run("a b c d");
    for (size_t i = 0; i < out.tokens.size(); ++i) {
        EXPECT_EQ(out.tokens[i].column, i);
    }
}

TEST(TokenizerTest, ShortTokensOneWordEach)
{
    Tokenizer t;
    TokenizedLine out = t.run("ab cd");
    EXPECT_EQ(out.emit_words, 2u);
    EXPECT_EQ(out.useful_bytes, 4u);
}

TEST(TokenizerTest, LongTokenSpansWords)
{
    Tokenizer t;
    std::string tok(40, 'x');  // ceil(40/16) = 3 words
    TokenizedLine out = t.run(tok);
    ASSERT_EQ(out.tokens.size(), 1u);
    EXPECT_EQ(out.emit_words, 3u);
    EXPECT_EQ(out.useful_bytes, 40u);
}

TEST(TokenizerTest, IngestCyclesAtTwoBytesPerCycle)
{
    Tokenizer t;
    // "abcdef" (6 chars) -> one 16-byte padded word -> 8 cycles.
    TokenizedLine out = t.run("abcdef");
    EXPECT_EQ(out.ingest_cycles, 8u);
    // 31 chars + '\n' = two words = 16 cycles.
    out = t.run(std::string(31, 'y'));
    EXPECT_EQ(out.ingest_cycles, 16u);
}

TEST(TokenizerTest, EmptyLineEmitsMarkerWord)
{
    Tokenizer t;
    TokenizedLine out = t.run("");
    EXPECT_TRUE(out.tokens.empty());
    EXPECT_EQ(out.emit_words, 1u);
}

TEST(TokenizerTest, UsefulRatioTracksPadding)
{
    Tokenizer t;
    // 4-byte tokens in 16-byte words: exactly 25% useful.
    for (int i = 0; i < 100; ++i) {
        t.run("abcd efgh ijkl");
    }
    EXPECT_NEAR(t.usefulRatio(), 0.25, 0.01);
}

TEST(TokenizerTest, BusyCyclesIsMaxOfIngestAndEmit)
{
    Tokenizer t;
    // Short line dominated by ingest: 16 B padded / 2 = 8 cycles vs 2
    // emitted words.
    t.run("ab cd");
    EXPECT_EQ(t.busyCycles(), 8u);
    t.resetStats();
    // Many tiny tokens: 32 one-byte tokens = 32 emit words vs
    // padded ingest 64/2 = 32 — equal here; add one more token to tip.
    std::string line;
    for (int i = 0; i < 40; ++i) {
        line += "a ";
    }
    TokenizedLine out = t.run(line);
    EXPECT_EQ(out.emit_words, 40u);
    EXPECT_EQ(t.busyCycles(), std::max(out.ingest_cycles, out.emit_words));
}

TEST(TokenizerTest, StatsAccumulateAndReset)
{
    Tokenizer t;
    t.run("one two");
    t.run("three");
    EXPECT_EQ(t.wordsEmitted(), 3u);
    EXPECT_EQ(t.usefulBytes(), 11u);
    t.resetStats();
    EXPECT_EQ(t.wordsEmitted(), 0u);
    EXPECT_EQ(t.busyCycles(), 0u);
}

TEST(TokenizerTest, DelimiterRunsSkipped)
{
    Tokenizer t;
    TokenizedLine out = t.run("  a \t\t b  ");
    ASSERT_EQ(out.tokens.size(), 2u);
    EXPECT_EQ(out.tokens[0].text, "a");
    EXPECT_EQ(out.tokens[1].text, "b");
}

} // namespace
} // namespace mithril::accel
