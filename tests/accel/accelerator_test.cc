#include "accel/accelerator.h"

#include <gtest/gtest.h>

#include "compress/lzah.h"
#include "query/parser.h"

namespace mithril::accel {
namespace {

/** Compresses lines into LZAH pages and returns owning buffers. */
std::vector<compress::Bytes>
makePages(const std::vector<std::string> &lines)
{
    compress::LzahPageEncoder enc;
    for (const std::string &line : lines) {
        EXPECT_NE(enc.addLine(line), compress::AddLineResult::kRejected);
    }
    enc.flush();
    return std::move(enc.pages());
}

std::vector<compress::ByteView>
views(const std::vector<compress::Bytes> &pages)
{
    std::vector<compress::ByteView> out;
    for (const auto &p : pages) {
        out.emplace_back(p);
    }
    return out;
}

query::Query
mustParse(std::string_view text)
{
    query::Query q;
    Status st = query::parseQuery(text, &q);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return q;
}

TEST(AcceleratorTest, FilterModeKeepsMatchingLines)
{
    auto pages = makePages({"RAS KERNEL INFO ok",
                            "APP MESSAGE plain",
                            "RAS KERNEL FATAL bad"});
    Accelerator accel;
    ASSERT_TRUE(accel.configure(mustParse("KERNEL & !FATAL")).isOk());
    AccelResult result;
    ASSERT_TRUE(accel.process(views(pages), Mode::kFilter,
                              &result).isOk());
    EXPECT_EQ(result.lines_in, 3u);
    ASSERT_EQ(result.lines_kept, 1u);
    ASSERT_EQ(result.kept.size(), 1u);
    EXPECT_EQ(result.kept[0].text, "RAS KERNEL INFO ok");
}

TEST(AcceleratorTest, DecompressModeReturnsText)
{
    auto pages = makePages({"line one", "line two"});
    Accelerator accel;
    AccelResult result;
    ASSERT_TRUE(accel.process(views(pages), Mode::kDecompress,
                              &result).isOk());
    EXPECT_EQ(result.text, "line one\nline two\n");
    EXPECT_GT(result.cycles, 0u);
}

TEST(AcceleratorTest, RawModeForwardsBytes)
{
    auto pages = makePages({"anything"});
    Accelerator accel;
    AccelResult result;
    ASSERT_TRUE(accel.process(views(pages), Mode::kRaw, &result).isOk());
    EXPECT_EQ(result.raw.size(), pages.size() * 4096);
}

TEST(AcceleratorTest, FilterWithoutProgramFails)
{
    auto pages = makePages({"x"});
    Accelerator accel;
    AccelResult result;
    EXPECT_FALSE(accel.process(views(pages), Mode::kFilter,
                               &result).isOk());
}

TEST(AcceleratorTest, BatchedQueriesCountedPerQuery)
{
    std::vector<std::string> lines;
    for (int i = 0; i < 100; ++i) {
        lines.push_back(i % 2 == 0 ? "even token line"
                                   : "odd marker line");
    }
    auto pages = makePages(lines);
    std::vector<query::Query> queries{mustParse("even"),
                                      mustParse("odd"),
                                      mustParse("even | odd")};
    Accelerator accel;
    ASSERT_TRUE(accel.configure(queries).isOk());
    AccelResult result;
    ASSERT_TRUE(accel.process(views(pages), Mode::kFilter,
                              &result).isOk());
    ASSERT_GE(result.kept_per_query.size(), 3u);
    EXPECT_EQ(result.kept_per_query[0], 50u);
    EXPECT_EQ(result.kept_per_query[1], 50u);
    EXPECT_EQ(result.kept_per_query[2], 100u);
    EXPECT_EQ(result.lines_kept, 100u);
}

TEST(AcceleratorTest, CyclesScaleWithData)
{
    std::vector<std::string> small_lines(10, "tok a b"), big_lines;
    for (int i = 0; i < 1000; ++i) {
        big_lines.push_back("tok number " + std::to_string(i) +
                            " with more content to process");
    }
    Accelerator accel;
    ASSERT_TRUE(accel.configure(mustParse("tok")).isOk());

    auto small_pages = makePages(small_lines);
    auto big_pages = makePages(big_lines);
    AccelResult small_result, big_result;
    ASSERT_TRUE(accel.process(views(small_pages), Mode::kFilter,
                              &small_result).isOk());
    ASSERT_TRUE(accel.process(views(big_pages), Mode::kFilter,
                              &big_result).isOk());
    EXPECT_GT(big_result.cycles, small_result.cycles * 5);
    EXPECT_GT(big_result.filterThroughput(), 0.0);
}

TEST(AcceleratorTest, MorePipelinesFewerCycles)
{
    std::vector<std::string> lines;
    for (int i = 0; i < 6000; ++i) {
        lines.push_back("payload line number " + std::to_string(i * 977) +
                        " alpha beta gamma delta epsilon zeta");
    }
    auto pages = makePages(lines);
    ASSERT_GT(pages.size(), 8u);

    AccelResult one, four;
    Accelerator a1(AccelConfig{.pipelines = 1});
    Accelerator a4(AccelConfig{.pipelines = 4});
    ASSERT_TRUE(a1.configure(mustParse("alpha")).isOk());
    ASSERT_TRUE(a4.configure(mustParse("alpha")).isOk());
    ASSERT_TRUE(a1.process(views(pages), Mode::kFilter, &one).isOk());
    ASSERT_TRUE(a4.process(views(pages), Mode::kFilter, &four).isOk());
    // Four pipelines split the page stream ~4x.
    EXPECT_LT(four.cycles, one.cycles / 2);
    EXPECT_EQ(one.lines_kept, four.lines_kept);
}

TEST(AcceleratorTest, UsefulRatioReported)
{
    std::vector<std::string> lines(200, "ab cd ef gh ij");
    auto pages = makePages(lines);
    Accelerator accel;
    ASSERT_TRUE(accel.configure(mustParse("ab")).isOk());
    AccelResult result;
    ASSERT_TRUE(accel.process(views(pages), Mode::kFilter,
                              &result).isOk());
    // 2-byte tokens in 16-byte words: 12.5% useful.
    EXPECT_NEAR(result.usefulRatio(), 0.125, 0.01);
}

TEST(AcceleratorTest, KeepLinesDisabledStillCounts)
{
    auto pages = makePages({"hit a", "hit b", "miss"});
    Accelerator accel(AccelConfig{.keep_lines = false});
    ASSERT_TRUE(accel.configure(mustParse("hit")).isOk());
    AccelResult result;
    ASSERT_TRUE(accel.process(views(pages), Mode::kFilter,
                              &result).isOk());
    EXPECT_EQ(result.lines_kept, 2u);
    EXPECT_TRUE(result.kept.empty());
    EXPECT_EQ(result.kept_per_query[0], 2u);
}

} // namespace
} // namespace mithril::accel
