#include "accel/hash_filter.h"

#include <gtest/gtest.h>

#include "accel/query_compiler.h"
#include "accel/tokenizer.h"
#include "query/parser.h"

namespace mithril::accel {
namespace {

FilterProgram
program(std::string_view query_text,
        std::string_view query_text2 = "")
{
    std::vector<query::Query> queries(1);
    Status st = query::parseQuery(query_text, &queries[0]);
    EXPECT_TRUE(st.isOk()) << st.toString();
    if (!query_text2.empty()) {
        queries.emplace_back();
        st = query::parseQuery(query_text2, &queries[1]);
        EXPECT_TRUE(st.isOk()) << st.toString();
    }
    FilterProgram p;
    st = compileQueries(queries, &p);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return p;
}

uint64_t
evalLine(const FilterProgram &p, std::string_view line)
{
    Tokenizer t;
    HashFilter f(&p);
    return f.evaluate(t.run(line));
}

TEST(HashFilterTest, AcceptsMatchingLine)
{
    FilterProgram p = program("RAS & KERNEL");
    EXPECT_EQ(evalLine(p, "x RAS y KERNEL z"), 1u);
    EXPECT_EQ(evalLine(p, "x RAS y z"), 0u);
}

TEST(HashFilterTest, NegativeTermVetoes)
{
    FilterProgram p = program("RAS & !FATAL");
    EXPECT_EQ(evalLine(p, "RAS INFO ok"), 1u);
    EXPECT_EQ(evalLine(p, "RAS FATAL bad"), 0u);
}

TEST(HashFilterTest, ExactBitmapMatchRequired)
{
    // Line has only a subset of required tokens -> bitmap mismatch.
    FilterProgram p = program("a & b & c");
    EXPECT_EQ(evalLine(p, "a b"), 0u);
    EXPECT_EQ(evalLine(p, "a b c"), 1u);
    EXPECT_EQ(evalLine(p, "a b c d"), 1u);  // extras are ignored
}

TEST(HashFilterTest, TwoQueriesReportDistinctOwners)
{
    FilterProgram p = program("alpha", "beta");
    EXPECT_EQ(evalLine(p, "alpha here"), 0b01u);
    EXPECT_EQ(evalLine(p, "beta there"), 0b10u);
    EXPECT_EQ(evalLine(p, "alpha beta"), 0b11u);
    EXPECT_EQ(evalLine(p, "gamma"), 0u);
}

TEST(HashFilterTest, CyclesCountTokenWords)
{
    FilterProgram p = program("z");
    Tokenizer t;
    HashFilter f(&p);
    f.evaluate(t.run("short tokens here"));  // 3 words
    EXPECT_EQ(f.busyCycles(), 3u);
    std::string long_tok(33, 'w');  // 3 words
    f.evaluate(t.run(long_tok));
    EXPECT_EQ(f.busyCycles(), 6u);
}

TEST(HashFilterTest, LineStatsTrack)
{
    FilterProgram p = program("hit");
    Tokenizer t;
    HashFilter f(&p);
    f.evaluate(t.run("hit one"));
    f.evaluate(t.run("miss"));
    EXPECT_EQ(f.linesIn(), 2u);
    EXPECT_EQ(f.linesKept(), 1u);
    f.resetStats();
    EXPECT_EQ(f.linesIn(), 0u);
}

TEST(HashFilterTest, EmptyLineMatchesOnlyPureNegative)
{
    FilterProgram pos = program("a");
    EXPECT_EQ(evalLine(pos, ""), 0u);
    FilterProgram neg = program("!a");
    EXPECT_EQ(evalLine(neg, ""), 1u);
}

TEST(HashFilterTest, LongTokenExactMatch)
{
    std::string tok(40, 'k');
    FilterProgram p = program(tok);
    EXPECT_EQ(evalLine(p, "prefix " + tok + " suffix"), 1u);
    EXPECT_EQ(evalLine(p, "prefix " + tok.substr(0, 39) + " suffix"), 0u);
}

} // namespace
} // namespace mithril::accel
