/**
 * @file
 * Property sweep: cuckoo insertion success probability versus load
 * factor (Section 4.2.1 cites ~certain success at load <= 0.5, which
 * is why the hardware over-provisions its 256 rows). The sweep inserts
 * random token sets at several target loads across many seeds and
 * checks the success-rate cliff sits where the theory puts it.
 */
#include <gtest/gtest.h>

#include <string>

#include "accel/cuckoo_table.h"
#include "common/rng.h"

namespace mithril::accel {
namespace {

/** Tries to insert `load * rows` random tokens; true if all placed. */
bool
fillToLoad(uint32_t rows, double load, uint64_t seed)
{
    CuckooTable table(rows);
    Rng rng(seed);
    size_t n = static_cast<size_t>(load * rows);
    for (size_t i = 0; i < n; ++i) {
        std::string token =
            "t" + std::to_string(rng.next() % 1000000000) + "-" +
            std::to_string(i);
        Status st = table.insert(token, i % kFlagPairs, false);
        if (!st.isOk()) {
            return false;
        }
    }
    return true;
}

class CuckooLoadSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>>
{
};

TEST_P(CuckooLoadSweep, ModerateLoadSucceeds)
{
    // Well below the 0.5 threshold, placement must always succeed —
    // this is the regime real queries put the table in.
    auto [rows, seed] = GetParam();
    EXPECT_TRUE(fillToLoad(rows, 0.35, seed));
}

INSTANTIATE_TEST_SUITE_P(
    RowsAndSeeds, CuckooLoadSweep,
    ::testing::Combine(::testing::Values(256u, 1024u),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)));

TEST(CuckooLoadSweepTest, SuccessCliffSitsAtTheCitedThreshold)
{
    // 0.5 is the *threshold*: success w.h.p. below it, rare failures
    // at it, frequent failures above it. Sweep 24 seeds per load.
    int fail_040 = 0, fail_050 = 0, fail_090 = 0;
    for (uint64_t seed = 0; seed < 24; ++seed) {
        fail_040 += fillToLoad(256, 0.40, seed) ? 0 : 1;
        fail_050 += fillToLoad(256, 0.50, seed) ? 0 : 1;
        fail_090 += fillToLoad(256, 0.90, seed) ? 0 : 1;
    }
    // Small tables (256 rows) have real variance; the asymptotic 0.5
    // threshold shows up as a steep gradient, not a step.
    EXPECT_LE(fail_040, 2);
    EXPECT_LE(fail_050, 8);
    EXPECT_GT(fail_090, 12);     // past the cliff
    EXPECT_GT(fail_090, fail_050);
    EXPECT_GE(fail_050, fail_040);
}

} // namespace
} // namespace mithril::accel
