// Clean fixture: near-miss patterns for every rule; must produce ZERO
// findings (asserted by lint_selftest.py). Guard matches path.
#ifndef MITHRIL_TESTS_LINT_FIXTURES_CLEAN_FIXTURE_H
#define MITHRIL_TESTS_LINT_FIXTURES_CLEAN_FIXTURE_H

#include <cstdint>
#include <memory>

#include "common/simtime.h"
#include "common/status.h"

namespace mithril {

// Near-miss for dropped-status: returns a value type, not Status.
uint64_t fixtureCount();

// Near-miss for cycle-to-time: a cycles identifier with additive
// arithmetic only stays in the cycle domain — legal everywhere.
inline uint64_t
addCycles(uint64_t busy_cycles, uint64_t stall_cycles)
{
    return busy_cycles + stall_cycles;
}

// The sanctioned conversion: cycles flow through SimTime.
inline double
fixtureSeconds(uint64_t cycles, double hz)
{
    return SimTime::cycles(cycles, hz).toSeconds();
}

} // namespace mithril

#endif // MITHRIL_TESTS_LINT_FIXTURES_CLEAN_FIXTURE_H
