// Clean fixture body: consumed Status, smart pointers, deterministic
// randomness, words that merely contain banned substrings.
#include "clean_fixture.h"

#include <string>
#include <vector>

#include "common/rng.h"

namespace mithril {

namespace {

// "runtime" contains "time(", "randomize" contains "rand" — neither
// may fire banned-rand-time.
double
runtime(double randomize)
{
    return randomize * 2.0;
}

} // namespace

uint64_t
fixtureCount()
{
    Rng rng(42);
    auto held = std::make_unique<std::vector<uint64_t>>();
    held->push_back(rng.next());
    // Method named like a banned call on an object: fine.
    std::string s;
    s.append("delete me not, new or old");
    return held->size() + static_cast<uint64_t>(runtime(1.0)) +
           s.size();
}

} // namespace mithril
