// Known-bad fixture: MutexLock nesting outside the declared table —
// a shard's queue mutex and its log mutex must never be held together.
#include "common/mutex.h"

struct Shard {
    mithril::Mutex mu;
    mithril::Mutex log_mu;
    int queued = 0;
    int applied = 0;
};

int
bad_nested_apply(Shard &s)
{
    mithril::MutexLock lock(s.mu);
    mithril::MutexLock log_lock(s.log_mu);  // line 16: lock-order
    return s.queued + s.applied;
}

int
good_sequential_apply(Shard &s)
{
    int queued;
    {
        mithril::MutexLock lock(s.mu);
        queued = s.queued;
    }
    mithril::MutexLock log_lock(s.log_mu);  // not flagged: mu released
    return queued + s.applied;
}
