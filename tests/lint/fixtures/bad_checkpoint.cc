// Known-bad fixture: publishes the superblock epoch / snapshot head
// outside the checkpoint protocol's own publishers (format/checkpoint/
// reopen/writeSuperblock); fed explicitly by
// tests/lint/lint_selftest.py.
#include <cstdint>

class Journal {
    void replayChain();
    void adoptSnapshot();
    uint64_t epoch_ = 0;          // declaration initializer: not flagged
    uint64_t snapshot_head_ = ~0ull; // declaration initializer too

public:
    void checkpoint();
};

void
Journal::replayChain()
{
    epoch_ += 1;
}

void
Journal::checkpoint()
{
    epoch_ = epoch_ + 1; // publisher: not flagged
    snapshot_head_ = 42; // publisher: not flagged
}

void
Journal::adoptSnapshot()
{
    snapshot_head_ = 7;
}
