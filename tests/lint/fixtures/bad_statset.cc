// Known-bad fixture: direct use of the deprecated StatSet shim.
#include "common/stats.h"

namespace mithril {

void
countThings()
{
    StatSet stats;  // line 9: direct-statset
    stats.add("things");
}

} // namespace mithril
