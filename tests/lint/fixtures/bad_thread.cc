// Known-bad fixture: concurrency primitives created outside src/svc/.
#include <future>
#include <mutex>
#include <thread>

std::mutex g_mu;  // line 6: thread-ownership (mutex creation)

int
spawn()
{
    std::thread worker([] {});  // line 11: thread-ownership
    worker.join();
    auto f = std::async([] { return 1; });  // line 13: thread-ownership
    std::condition_variable cv;  // line 14: thread-ownership
    (void)cv;
    // Using someone else's lock is fine: guards and this_thread are
    // consumption, not creation.
    std::lock_guard<std::mutex> lock(g_mu);  // not flagged
    std::this_thread::yield();               // not flagged
    return f.get();
}
