// Known-bad fixture: threads created outside src/svc/
// (thread-ownership) and raw std lock primitives outside
// common/mutex.h (raw-mutex).
#include <future>
#include <mutex>
#include <thread>

std::mutex g_mu;  // line 8: raw-mutex

int
spawn()
{
    std::thread worker([] {});  // line 13: thread-ownership
    worker.join();
    auto f = std::async([] { return 1; });  // line 15: thread-ownership
    std::condition_variable cv;  // line 16: raw-mutex
    (void)cv;
    // Raw guards are findings too: a lock the analysis cannot see is
    // a lock it cannot check.
    std::lock_guard<std::mutex> lock(g_mu);  // line 20: raw-mutex
    std::this_thread::yield();               // not flagged
    return f.get();
}
