// Known-bad fixture: ad-hoc duration arithmetic fed into scalar
// metrics instead of the obs::Histogram / span APIs.
#include "common/wall_timer.h"
#include "obs/metrics.h"

namespace mithril {

void
timeSomething(obs::MetricsRegistry &metrics)
{
    WallTimer timer;
    doWork();
    metrics.counter("stage.wall_us").add(timer.seconds() * 1e6);  // 13
    metrics.gauge("stage.sim_ps").set(device.elapsed().ps());     // 14
    latency_hist.record(timer.seconds() * 1e9);                   // 15
    // The StageLatency/StageTimer verbs are the sanctioned path:
    stages.commit.recordWallNs(42);         // line 17: not flagged
    stages.commit.recordSim(elapsedSim());  // line 18: not flagged
    timer_raii.setSimDuration(busy);        // line 19: not flagged
}

} // namespace mithril
