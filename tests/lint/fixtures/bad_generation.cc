// Known-bad fixture: bumps the journal generation outside the two
// chain-head minters (format()/reopen()); fed explicitly by
// tests/lint/lint_selftest.py.
#include <cstdint>

class Journal {
    void replayChain();
    void adoptHead();
    uint64_t generation_ = 0; // declaration initializer: not flagged

public:
    void format();
};

void
Journal::replayChain()
{
    generation_ = 7;
}

void
Journal::format()
{
    generation_ = 1; // minter: not flagged
}

void
Journal::adoptHead()
{
    ++generation_;
}
