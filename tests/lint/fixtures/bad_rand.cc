// Known-bad fixture: non-deterministic randomness and wall-clock seeds.
#include <cstdlib>
#include <ctime>

int
roll()
{
    srand(time(nullptr));  // line 8: banned-rand-time (srand AND time)
    return rand();  // line 9: banned-rand-time
}
