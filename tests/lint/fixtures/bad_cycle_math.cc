// Known-bad fixture: raw cycle->time conversion outside simtime.h/sim/.
// Each offending line number is asserted by lint_selftest.py.
#include <cstdint>

double
modelSeconds(uint64_t cycles, double clock_hz)
{
    return cycles / clock_hz;  // line 8: cycle-to-time
}

double
modelGbps(uint64_t busy_cycles, uint64_t bytes)
{
    double secs = static_cast<double>(busy_cycles) / 200e6;  // line 14
    return bytes / secs / 1e9;
}
