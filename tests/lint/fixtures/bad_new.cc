// Known-bad fixture: naked new/delete outside arena code.
void
churn()
{
    int *p = new int[4];  // line 5: raw-new-delete
    delete[] p;  // line 6: raw-new-delete
}
