// Known-bad fixture: reinterpret_cast outside src/common/bits.h.
#include <cstdint>

const char *
punned(const uint8_t *bytes)
{
    return reinterpret_cast<const char *>(bytes);  // line 7: cast
}
