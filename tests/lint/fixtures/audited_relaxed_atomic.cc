// Fixture on the audited branch (the "audited_relaxed" name
// fragment): inside the audited set every relaxed use still needs a
// nearby justification comment.
#include <atomic>

std::atomic<int> g_hits{0};

void
bump_justified()
{
    // relaxed: independent monotonic counter, no data published.
    g_hits.fetch_add(1, std::memory_order_relaxed);  // not flagged
}

int
peek_unjustified()
{
    return g_hits.load(std::memory_order_relaxed);  // line 18: fires
}
