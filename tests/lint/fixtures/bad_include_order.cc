// Known-bad fixture: uplevel include path.
#include "../bad_outside.h"  // line 2: include-order

int
fixtureMain()
{
    return 0;
}
