// Known-bad fixture: relaxed atomics outside the audited files.
#include <atomic>

std::atomic<int> g_hits{0};

void
bump()
{
    // relaxed: a justification cannot move a file into the audited set.
    g_hits.fetch_add(1, std::memory_order_relaxed);  // line 10: fires
}

int
peek()
{
    return g_hits.load(std::memory_order_relaxed);  // line 16: fires
}
