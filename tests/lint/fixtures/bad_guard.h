// Known-bad fixture: include guard does not match the file path.
#ifndef SOME_RANDOM_GUARD_H
#define SOME_RANDOM_GUARD_H

int fixtureValue();

#endif // SOME_RANDOM_GUARD_H
