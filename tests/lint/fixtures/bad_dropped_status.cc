// Known-bad fixture: a Status-returning call used as a bare statement.
#include "bad_api.h"

namespace mithril {

void
sealAll()
{
    sealFixturePage(0);  // line 9: dropped-status
    Status kept = sealFixturePage(1);  // consumed: no finding
    (void)kept;
}

} // namespace mithril
