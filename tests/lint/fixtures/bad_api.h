// Known-bad fixture companion: declares a Status-returning API so the
// dropped-status rule has a name to track.
#ifndef MITHRIL_TESTS_LINT_FIXTURES_BAD_API_H
#define MITHRIL_TESTS_LINT_FIXTURES_BAD_API_H

#include "common/status.h"

namespace mithril {

Status sealFixturePage(int page);

} // namespace mithril

#endif // MITHRIL_TESTS_LINT_FIXTURES_BAD_API_H
