// Fixture: every way of wiring a fault hook that bypasses FaultPlan.
// Each numbered line must fire [fault-gating].
namespace mithril {

#ifdef MITHRIL_INJECT_FAULTS  // line 5: compile-time fault gate
static bool g_fault_enabled = true;  // line 6: global mutable toggle

void
corruptRead(Device *device)
{
    device->drawRead(9, 4096);  // line 11: drawRead outside a plan
    device->drawWrite(9, 4096);  // line 12: drawWrite outside a plan
}

#endif

} // namespace mithril
