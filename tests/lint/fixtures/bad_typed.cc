// Known-bad fixture: ad-hoc typed-field parsing outside src/typed/.
// Ingest extraction and query predicates must share the one audited
// parser set, or the typed tier's exactness argument breaks.
#include <arpa/inet.h>

unsigned
lookupHost(const char *s)
{
    in_addr a{};
    inet_aton(s, &a);     // line 10: typed-extractor (libc parser)
    return inet_addr(s);  // line 11: typed-extractor (libc parser)
}

bool
extractIpField(const char *s,  // line 15: typed-extractor (bespoke)
               unsigned *out);

unsigned
viaSubsystem(const char *s)
{
    unsigned v = 0;
    (void)typed::extractIpField(s, &v);  // qualified: sanctioned route
    return v;
}
