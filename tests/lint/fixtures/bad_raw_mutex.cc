// Known-bad fixture: raw std lock primitives outside common/mutex.h.
#include <condition_variable>
#include <mutex>

std::mutex g_reg_mu;               // line 5: raw-mutex
std::condition_variable_any g_cv;  // line 6: raw-mutex

int
locked_get(int *slot)
{
    std::lock_guard<std::mutex> lock(g_reg_mu);  // line 11: raw-mutex
    return *slot;
}

void
locked_wait(bool *ready)
{
    std::unique_lock<std::mutex> lock(g_reg_mu);  // line 18: raw-mutex
    while (!*ready) {
        g_cv.wait(lock);  // not flagged: no raw std spelling here
    }
}
