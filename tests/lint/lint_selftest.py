#!/usr/bin/env python3
"""Self-test for tools/mithril_lint.py.

Feeds each known-bad fixture through the linter and asserts the right
rule fires at the right file:line; then asserts the clean fixture
produces zero findings (no false positives). Exercised via
`ctest -R lint_selftest`.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(ROOT, "tools", "mithril_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*names):
    paths = [os.path.join(FIXTURES, n) for n in names]
    proc = subprocess.run(
        [sys.executable, LINT, "--root", ROOT, *paths],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout


failures = []


def expect(cond, what):
    if not cond:
        failures.append(what)
        print(f"FAIL: {what}")
    else:
        print(f"ok:   {what}")


def expect_finding(output, fixture, line, rule):
    pattern = rf"tests/lint/fixtures/{re.escape(fixture)}:{line}: " \
              rf"\[{re.escape(rule)}\]"
    expect(re.search(pattern, output) is not None,
           f"{fixture}:{line} fires [{rule}]")


# ---- each known-bad fixture fires its rule at the exact line ----------

rc, out = run_lint("bad_cycle_math.cc")
expect(rc == 1, "bad_cycle_math.cc exits 1")
expect_finding(out, "bad_cycle_math.cc", 8, "cycle-to-time")
expect_finding(out, "bad_cycle_math.cc", 14, "cycle-to-time")

# dropped-status needs the declaring header in the same scan set.
rc, out = run_lint("bad_api.h", "bad_dropped_status.cc")
expect(rc == 1, "bad_dropped_status.cc exits 1")
expect_finding(out, "bad_dropped_status.cc", 9, "dropped-status")
expect("bad_dropped_status.cc:10" not in out,
       "consumed Status on line 10 is not flagged")

rc, out = run_lint("bad_statset.cc")
expect(rc == 1, "bad_statset.cc exits 1")
expect_finding(out, "bad_statset.cc", 9, "direct-statset")

rc, out = run_lint("bad_rand.cc")
expect(rc == 1, "bad_rand.cc exits 1")
expect_finding(out, "bad_rand.cc", 8, "banned-rand-time")
expect_finding(out, "bad_rand.cc", 9, "banned-rand-time")

rc, out = run_lint("bad_new.cc")
expect(rc == 1, "bad_new.cc exits 1")
expect_finding(out, "bad_new.cc", 5, "raw-new-delete")
expect_finding(out, "bad_new.cc", 6, "raw-new-delete")

rc, out = run_lint("bad_cast.cc")
expect(rc == 1, "bad_cast.cc exits 1")
expect_finding(out, "bad_cast.cc", 7, "cast-outside-bits")

rc, out = run_lint("bad_fault_hook.cc")
expect(rc == 1, "bad_fault_hook.cc exits 1")
expect_finding(out, "bad_fault_hook.cc", 5, "fault-gating")
expect_finding(out, "bad_fault_hook.cc", 6, "fault-gating")
expect_finding(out, "bad_fault_hook.cc", 11, "fault-gating")
expect_finding(out, "bad_fault_hook.cc", 12, "fault-gating")

rc, out = run_lint("bad_thread.cc")
expect(rc == 1, "bad_thread.cc exits 1")
expect_finding(out, "bad_thread.cc", 8, "raw-mutex")
expect_finding(out, "bad_thread.cc", 13, "thread-ownership")
expect_finding(out, "bad_thread.cc", 15, "thread-ownership")
expect_finding(out, "bad_thread.cc", 16, "raw-mutex")
expect_finding(out, "bad_thread.cc", 20, "raw-mutex")
expect("[thread-ownership]" not in
       "\n".join(l for l in out.splitlines()
                 if ":8:" in l or ":16:" in l or ":20:" in l),
       "locks are raw-mutex findings, not thread-ownership")
expect("bad_thread.cc:21" not in out,
       "std::this_thread is not flagged")

rc, out = run_lint("bad_raw_mutex.cc")
expect(rc == 1, "bad_raw_mutex.cc exits 1")
expect_finding(out, "bad_raw_mutex.cc", 5, "raw-mutex")
expect_finding(out, "bad_raw_mutex.cc", 6, "raw-mutex")
expect_finding(out, "bad_raw_mutex.cc", 11, "raw-mutex")
expect_finding(out, "bad_raw_mutex.cc", 18, "raw-mutex")
expect("bad_raw_mutex.cc:20" not in out,
       "waiting on an already-declared condvar is not flagged")

rc, out = run_lint("bad_lock_order.cc")
expect(rc == 1, "bad_lock_order.cc exits 1")
expect_finding(out, "bad_lock_order.cc", 16, "lock-order")
expect("bad_lock_order.cc:15" not in out,
       "the outer (first) acquisition is not flagged")
expect("bad_lock_order.cc:28" not in out,
       "sequential (non-nested) acquisition is not flagged")

rc, out = run_lint("bad_relaxed_atomic.cc")
expect(rc == 1, "bad_relaxed_atomic.cc exits 1")
expect_finding(out, "bad_relaxed_atomic.cc", 10, "atomics-discipline")
expect_finding(out, "bad_relaxed_atomic.cc", 16, "atomics-discipline")

rc, out = run_lint("audited_relaxed_atomic.cc")
expect(rc == 1, "audited_relaxed_atomic.cc exits 1")
expect_finding(out, "audited_relaxed_atomic.cc", 18,
               "atomics-discipline")
expect("audited_relaxed_atomic.cc:12" not in out,
       "justified relaxed use in an audited file is not flagged")

rc, out = run_lint("bad_generation.cc")
expect(rc == 1, "bad_generation.cc exits 1")
expect_finding(out, "bad_generation.cc", 18, "generation-bump")
expect_finding(out, "bad_generation.cc", 30, "generation-bump")
expect("bad_generation.cc:9" not in out,
       "the member declaration initializer is not flagged")
expect("bad_generation.cc:24" not in out,
       "Journal::format() may mint a generation")

rc, out = run_lint("bad_checkpoint.cc")
expect(rc == 1, "bad_checkpoint.cc exits 1")
expect_finding(out, "bad_checkpoint.cc", 20, "checkpoint-epoch")
expect_finding(out, "bad_checkpoint.cc", 33, "checkpoint-epoch")
expect("bad_checkpoint.cc:10" not in out,
       "the epoch member declaration initializer is not flagged")
expect("bad_checkpoint.cc:11" not in out,
       "the snapshot-head declaration initializer is not flagged")
expect("bad_checkpoint.cc:26" not in out,
       "Journal::checkpoint() may bump the epoch")
expect("bad_checkpoint.cc:27" not in out,
       "Journal::checkpoint() may publish the snapshot head")

rc, out = run_lint("bad_latency.cc")
expect(rc == 1, "bad_latency.cc exits 1")
expect_finding(out, "bad_latency.cc", 13, "adhoc-latency")
expect_finding(out, "bad_latency.cc", 14, "adhoc-latency")
expect_finding(out, "bad_latency.cc", 15, "adhoc-latency")
expect("bad_latency.cc:17" not in out,
       "StageLatency recordWallNs() is not flagged")
expect("bad_latency.cc:18" not in out,
       "StageLatency recordSim() is not flagged")
expect("bad_latency.cc:19" not in out,
       "StageTimer setSimDuration() is not flagged")

rc, out = run_lint("bad_typed.cc")
expect(rc == 1, "bad_typed.cc exits 1")
expect_finding(out, "bad_typed.cc", 10, "typed-extractor")
expect_finding(out, "bad_typed.cc", 11, "typed-extractor")
expect_finding(out, "bad_typed.cc", 15, "typed-extractor")
expect("bad_typed.cc:22" not in out,
       "typed::-qualified extraction is the sanctioned route")

rc, out = run_lint("bad_guard.h")
expect(rc == 1, "bad_guard.h exits 1")
expect_finding(out, "bad_guard.h", 2, "header-guard")

rc, out = run_lint("bad_include_order.cc")
expect(rc == 1, "bad_include_order.cc exits 1")
expect_finding(out, "bad_include_order.cc", 2, "include-order")

# ---- every finding carries a fix hint ---------------------------------

rc, out = run_lint("bad_statset.cc")
expect("hint:" in out, "findings include a fix hint")

# ---- the clean fixture produces zero findings -------------------------

rc, out = run_lint("clean_fixture.h", "clean_fixture.cc")
expect(rc == 0, "clean fixtures exit 0")
expect("finding" not in out, "clean fixtures produce no findings")

# ---- and the real tree is clean (the gate itself) ---------------------

proc = subprocess.run([sys.executable, LINT, "--root", ROOT],
                      capture_output=True, text=True)
expect(proc.returncode == 0,
       f"full tree is lint-clean\n{proc.stdout}")

if failures:
    print(f"\n{len(failures)} selftest failure(s)")
    sys.exit(1)
print("\nlint_selftest: all assertions passed")
