/**
 * @file
 * Property test: the inverted index against an exact oracle.
 *
 * The index is probabilistic — it may return extra pages (entry
 * sharing) but must NEVER miss a page a token truly occurs in
 * (Section 6.2: "this still results in correct operations since
 * unnecessary data will be filtered out"). A std::map oracle records
 * the true token -> pages mapping over randomized workloads across
 * configurations; every lookup must be a superset of the truth, and
 * intersections must be supersets of the true intersections.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/inverted_index.h"

namespace mithril::index {
namespace {

using storage::PageId;

struct Workload {
    std::map<std::string, std::vector<PageId>> truth;
    std::vector<std::string> tokens;
};

/** Random ingest: pages 0..n, each with a random token subset. */
Workload
runWorkload(InvertedIndex *idx, Rng *rng, size_t pages,
            size_t vocab_size)
{
    Workload w;
    for (size_t v = 0; v < vocab_size; ++v) {
        w.tokens.push_back("tok-" + std::to_string(v * 131));
    }
    for (PageId p = 0; p < pages; ++p) {
        std::set<size_t> chosen;
        size_t k = 1 + rng->below(8);
        for (size_t i = 0; i < k; ++i) {
            chosen.insert(rng->skewedBelow(vocab_size, 2.0));
        }
        std::vector<std::string_view> views;
        for (size_t v : chosen) {
            views.push_back(w.tokens[v]);
            w.truth[w.tokens[v]].push_back(p);
        }
        idx->addPage(p, views, p);
        // Interleave occasional flushes: partial state must stay sound.
        if (rng->chance(0.02)) {
            idx->flush();
        }
    }
    return w;
}

class IndexOracleTest
    : public ::testing::TestWithParam<std::tuple<int, bool, uint32_t>>
{
};

TEST_P(IndexOracleTest, LookupIsAlwaysSuperset)
{
    auto [seed, two_hash, entries] = GetParam();
    Rng rng(seed);
    storage::SsdModel ssd;
    IndexConfig cfg;
    cfg.hash_entries = entries;
    cfg.two_hash = two_hash;
    InvertedIndex idx(&ssd, cfg);

    Workload w = runWorkload(&idx, &rng, 400, 64);

    for (const auto &[token, true_pages] : w.truth) {
        std::vector<PageId> got = idx.lookup(token);
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        // Superset check: every true page present.
        ASSERT_TRUE(std::includes(got.begin(), got.end(),
                                  true_pages.begin(), true_pages.end()))
            << token << " with " << entries << " entries";
    }
}

TEST_P(IndexOracleTest, IntersectionIsSupersetOfTrueIntersection)
{
    auto [seed, two_hash, entries] = GetParam();
    Rng rng(seed ^ 0x5555);
    storage::SsdModel ssd;
    IndexConfig cfg;
    cfg.hash_entries = entries;
    cfg.two_hash = two_hash;
    InvertedIndex idx(&ssd, cfg);

    Workload w = runWorkload(&idx, &rng, 300, 48);

    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::string> pick{
            w.tokens[rng.below(w.tokens.size())],
            w.tokens[rng.below(w.tokens.size())]};
        std::vector<PageId> got = idx.lookupAll(pick);

        std::vector<PageId> a = w.truth[pick[0]];
        std::vector<PageId> b = w.truth[pick[1]];
        std::vector<PageId> expected;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(expected));
        ASSERT_TRUE(std::includes(got.begin(), got.end(),
                                  expected.begin(), expected.end()))
            << pick[0] << " & " << pick[1];
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, IndexOracleTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(true, false),
                       ::testing::Values(64u, 1024u, 1u << 14)));

} // namespace
} // namespace mithril::index
