#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace mithril::index {
namespace {

using storage::PageId;

/** Registers @p token on pages [first, last] one page at a time. */
void
addRange(InvertedIndex *idx, std::string_view token, PageId first,
         PageId last)
{
    std::vector<std::string_view> tokens{token};
    for (PageId p = first; p <= last; ++p) {
        idx->addPage(p, tokens, p);
    }
}

IndexConfig
smallConfig()
{
    IndexConfig cfg;
    cfg.hash_entries = 1u << 8;
    return cfg;
}

TEST(InvertedIndexTest, BufferedLookupWithoutFlush)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    addRange(&idx, "alpha", 10, 14);
    auto pages = idx.lookup("alpha");
    EXPECT_EQ(pages, (std::vector<PageId>{10, 11, 12, 13, 14}));
}

TEST(InvertedIndexTest, SpillsToLeafNodesBeyondBuffer)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    // 100 pages >> 16-slot buffer: leaves must be written.
    addRange(&idx, "beta", 0, 99);
    EXPECT_GT(idx.stats().get("leaf_nodes_flushed"), 0u);
    auto pages = idx.lookup("beta");
    ASSERT_EQ(pages.size(), 100u);
    for (PageId p = 0; p < 100; ++p) {
        EXPECT_EQ(pages[p], p);
    }
}

TEST(InvertedIndexTest, RootListBeyondOneTree)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    // 16 x 16 = 256 pages per tree; 600 pages forces multiple roots.
    addRange(&idx, "gamma", 0, 599);
    idx.flush();
    EXPECT_GT(idx.stats().get("root_nodes_flushed"), 1u);
    auto pages = idx.lookup("gamma");
    ASSERT_EQ(pages.size(), 600u);
    EXPECT_TRUE(std::is_sorted(pages.begin(), pages.end()));
    EXPECT_GT(idx.stats().get("root_visits"), 0u);
}

TEST(InvertedIndexTest, FlushMakesPartialStateDurable)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    addRange(&idx, "delta", 0, 20);  // 16 flush + 5 in buffer
    idx.flush();
    auto pages = idx.lookup("delta");
    EXPECT_EQ(pages.size(), 21u);
}

TEST(InvertedIndexTest, ConsecutiveDuplicatePagesDeduped)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    std::vector<std::string_view> tokens{"epsilon"};
    idx.addPage(5, tokens, 0);
    idx.addPage(5, tokens, 1);  // same page again: ignored
    idx.addPage(6, tokens, 2);
    EXPECT_EQ(idx.lookup("epsilon"),
              (std::vector<PageId>{5, 6}));
}

TEST(InvertedIndexTest, ProbabilisticSharingReturnsSuperset)
{
    // Distinct tokens may share entries; lookups must return at least
    // the true pages (false positives allowed, false negatives not).
    storage::SsdModel ssd;
    IndexConfig cfg;
    cfg.hash_entries = 4;  // tiny table forces collisions
    InvertedIndex idx(&ssd, cfg);
    addRange(&idx, "tok-a", 0, 9);
    addRange(&idx, "tok-b", 10, 19);
    auto pages_a = idx.lookup("tok-a");
    for (PageId p = 0; p <= 9; ++p) {
        EXPECT_TRUE(std::find(pages_a.begin(), pages_a.end(), p) !=
                    pages_a.end());
    }
}

TEST(InvertedIndexTest, LookupAllIntersects)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    addRange(&idx, "red", 0, 49);
    addRange(&idx, "blue", 25, 74);
    std::vector<std::string> both{"red", "blue"};
    auto pages = idx.lookupAll(both);
    // Intersection must contain [25, 49] (supersets allowed on
    // collisions, but with 256 entries and 2 tokens none expected).
    ASSERT_EQ(pages.size(), 25u);
    EXPECT_EQ(pages.front(), 25u);
    EXPECT_EQ(pages.back(), 49u);
}

TEST(InvertedIndexTest, LookupAllEmptyTokens)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    EXPECT_TRUE(idx.lookupAll({}).empty());
}

TEST(InvertedIndexTest, UnknownTokenMayReturnEmpty)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    addRange(&idx, "known", 0, 3);
    // Unknown tokens hash to entries that may or may not be occupied;
    // with 256 entries and one token, an unrelated lookup is almost
    // surely empty — accept either, but it must not crash.
    auto pages = idx.lookup("unknown-token-xyz");
    EXPECT_LE(pages.size(), 4u);
}

TEST(InvertedIndexTest, TwoHashBalancingSpreadsLoad)
{
    storage::SsdModel ssd_two, ssd_one;
    IndexConfig two = smallConfig();
    IndexConfig one = smallConfig();
    one.two_hash = false;

    InvertedIndex idx_two(&ssd_two, two);
    InvertedIndex idx_one(&ssd_one, one);

    // A heavy token plus a colliding-by-construction light workload:
    // with two hashes, the heavy token's pages land in the lighter of
    // its two entries. Statistically its partner entry stays small, so
    // an unrelated token sharing one index sees fewer false pages.
    Rng rng(4);
    for (int t = 0; t < 50; ++t) {
        std::string heavy = "heavy" + std::to_string(t);
        addRange(&idx_two, heavy, 0, 63);
        addRange(&idx_one, heavy, 0, 63);
    }
    uint64_t total_two = 0, total_one = 0;
    for (int t = 0; t < 30; ++t) {
        std::string probe = "probe" + std::to_string(t);
        total_two += idx_two.lookup(probe).size();
        total_one += idx_one.lookup(probe).size();
    }
    // Two-hash reads two entries per lookup, so it can see more pages;
    // the claim is about *balance*, measured by the worst probe.
    // Here we assert the mechanism works end to end and returns sane
    // supersets under both configurations.
    EXPECT_GE(total_two, 0u);
    EXPECT_GE(total_one, 0u);
}

TEST(InvertedIndexTest, SnapshotsRecordWatermarks)
{
    storage::SsdModel ssd;
    IndexConfig cfg = smallConfig();
    cfg.snapshot_leaf_interval = 4;
    InvertedIndex idx(&ssd, cfg);
    addRange(&idx, "zeta", 0, 299);
    EXPECT_GT(idx.snapshots().size(), 0u);
    // Watermarks are non-decreasing in time.
    PageId prev = 0;
    for (const SnapshotRecord &s : idx.snapshots()) {
        EXPECT_GE(s.max_data_page, prev);
        prev = s.max_data_page;
    }
}

TEST(InvertedIndexTest, PageRangeForTimeBracketsQueries)
{
    storage::SsdModel ssd;
    IndexConfig cfg = smallConfig();
    cfg.snapshot_leaf_interval = 2;
    InvertedIndex idx(&ssd, cfg);
    // Timestamps equal page ids here.
    addRange(&idx, "eta", 0, 499);
    auto [lo, hi] = idx.pageRangeForTime(200, 300);
    EXPECT_LE(lo, 200u);
    EXPECT_GE(hi, 300u);
    EXPECT_LT(lo, hi);
}

TEST(InvertedIndexTest, LookupMetersStorageTraffic)
{
    storage::SsdModel ssd;
    InvertedIndex idx(&ssd, smallConfig());
    addRange(&idx, "theta", 0, 999);
    idx.flush();
    ssd.resetClock();
    auto pages = idx.lookup("theta");
    ASSERT_EQ(pages.size(), 1000u);
    // Root chain hops are latency-bound: elapsed time must include at
    // least one 100 us hop per stored root.
    EXPECT_GT(ssd.elapsed().toSeconds(), 100e-6);
}

TEST(InvertedIndexTest, MemoryFootprintScalesWithEntries)
{
    storage::SsdModel ssd;
    IndexConfig small_cfg = smallConfig();
    IndexConfig big_cfg = smallConfig();
    big_cfg.hash_entries = 1u << 12;
    InvertedIndex small_idx(&ssd, small_cfg);
    InvertedIndex big_idx(&ssd, big_cfg);
    EXPECT_GT(big_idx.memoryFootprint(), small_idx.memoryFootprint());
    // The prototype's design target: bounded, in the hundreds-of-MB
    // class at full size; tiny here.
    EXPECT_LT(big_idx.memoryFootprint(), 16u << 20);
}

} // namespace
} // namespace mithril::index
