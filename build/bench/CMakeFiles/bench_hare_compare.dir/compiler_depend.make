# Empty compiler generated dependencies file for bench_hare_compare.
# This may be replaced when dependencies are built.
