file(REMOVE_RECURSE
  "CMakeFiles/bench_hare_compare.dir/bench_hare_compare.cc.o"
  "CMakeFiles/bench_hare_compare.dir/bench_hare_compare.cc.o.d"
  "bench_hare_compare"
  "bench_hare_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hare_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
