# Empty dependencies file for bench_fig16_scatter.
# This may be replaced when dependencies are built.
