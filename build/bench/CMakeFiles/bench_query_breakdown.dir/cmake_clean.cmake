file(REMOVE_RECURSE
  "CMakeFiles/bench_query_breakdown.dir/bench_query_breakdown.cc.o"
  "CMakeFiles/bench_query_breakdown.dir/bench_query_breakdown.cc.o.d"
  "bench_query_breakdown"
  "bench_query_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
