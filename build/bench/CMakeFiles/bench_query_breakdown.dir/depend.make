# Empty dependencies file for bench_query_breakdown.
# This may be replaced when dependencies are built.
