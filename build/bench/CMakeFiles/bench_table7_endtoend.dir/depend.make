# Empty dependencies file for bench_table7_endtoend.
# This may be replaced when dependencies are built.
