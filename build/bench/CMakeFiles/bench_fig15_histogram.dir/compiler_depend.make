# Empty compiler generated dependencies file for bench_fig15_histogram.
# This may be replaced when dependencies are built.
