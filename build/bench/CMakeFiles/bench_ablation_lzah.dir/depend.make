# Empty dependencies file for bench_ablation_lzah.
# This may be replaced when dependencies are built.
