file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lzah.dir/bench_ablation_lzah.cc.o"
  "CMakeFiles/bench_ablation_lzah.dir/bench_ablation_lzah.cc.o.d"
  "bench_ablation_lzah"
  "bench_ablation_lzah.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lzah.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
