# Empty compiler generated dependencies file for bench_fig13_useful_bits.
# This may be replaced when dependencies are built.
