# Empty dependencies file for bench_table8_power.
# This may be replaced when dependencies are built.
