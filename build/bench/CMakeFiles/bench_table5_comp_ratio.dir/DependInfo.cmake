
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_comp_ratio.cc" "bench/CMakeFiles/bench_table5_comp_ratio.dir/bench_table5_comp_ratio.cc.o" "gcc" "bench/CMakeFiles/bench_table5_comp_ratio.dir/bench_table5_comp_ratio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mithril_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mithril_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/templates/CMakeFiles/mithril_templates.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mithril_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/loggen/CMakeFiles/mithril_loggen.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/mithril_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mithril_index.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/mithril_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mithril_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mithril_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mithril_query.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mithril_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mithril_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
