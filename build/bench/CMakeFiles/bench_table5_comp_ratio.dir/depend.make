# Empty dependencies file for bench_table5_comp_ratio.
# This may be replaced when dependencies are built.
