file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_comp_ratio.dir/bench_table5_comp_ratio.cc.o"
  "CMakeFiles/bench_table5_comp_ratio.dir/bench_table5_comp_ratio.cc.o.d"
  "bench_table5_comp_ratio"
  "bench_table5_comp_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_comp_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
