file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_comp_resources.dir/bench_table4_comp_resources.cc.o"
  "CMakeFiles/bench_table4_comp_resources.dir/bench_table4_comp_resources.cc.o.d"
  "bench_table4_comp_resources"
  "bench_table4_comp_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_comp_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
