# Empty dependencies file for bench_table4_comp_resources.
# This may be replaced when dependencies are built.
