# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_breakdown_clean "/usr/bin/cmake" "-E" "rm" "-rf" "/root/repo/build/bench/obs_out")
set_tests_properties(bench_breakdown_clean PROPERTIES  FIXTURES_SETUP "obs_clean" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_breakdown_mkdir "/usr/bin/cmake" "-E" "make_directory" "/root/repo/build/bench/obs_out")
set_tests_properties(bench_breakdown_mkdir PROPERTIES  FIXTURES_REQUIRED "obs_clean" FIXTURES_SETUP "obs_dir" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;49;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_breakdown_run "/root/repo/build/bench/bench_query_breakdown" "--metrics-out=/root/repo/build/bench/obs_out/metrics.json" "--json-out=/root/repo/build/bench/obs_out/records.json" "--trace-out=/root/repo/build/bench/obs_out/trace.json")
set_tests_properties(bench_breakdown_run PROPERTIES  FIXTURES_REQUIRED "obs_dir" FIXTURES_SETUP "obs_run" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;51;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_breakdown_metrics_check "/root/repo/build/bench/json_check" "/root/repo/build/bench/obs_out/metrics.json" "ssd.pages_read" "accel.stall_cycles" "index.candidate_pages" "lzah.bytes_in" "lzah.bytes_out" "core.queries")
set_tests_properties(bench_breakdown_metrics_check PROPERTIES  FIXTURES_REQUIRED "obs_run" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;56;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_breakdown_records_check "/root/repo/build/bench/json_check" "/root/repo/build/bench/obs_out/records.json" "query_breakdown" "candidate_pages" "false_positive_pages")
set_tests_properties(bench_breakdown_records_check PROPERTIES  FIXTURES_REQUIRED "obs_run" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;60;add_test;/root/repo/bench/CMakeLists.txt;0;")
