file(REMOVE_RECURSE
  "CMakeFiles/accel_test.dir/accel/accelerator_test.cc.o"
  "CMakeFiles/accel_test.dir/accel/accelerator_test.cc.o.d"
  "CMakeFiles/accel_test.dir/accel/cuckoo_sweep_test.cc.o"
  "CMakeFiles/accel_test.dir/accel/cuckoo_sweep_test.cc.o.d"
  "CMakeFiles/accel_test.dir/accel/cuckoo_table_test.cc.o"
  "CMakeFiles/accel_test.dir/accel/cuckoo_table_test.cc.o.d"
  "CMakeFiles/accel_test.dir/accel/equivalence_test.cc.o"
  "CMakeFiles/accel_test.dir/accel/equivalence_test.cc.o.d"
  "CMakeFiles/accel_test.dir/accel/hash_filter_test.cc.o"
  "CMakeFiles/accel_test.dir/accel/hash_filter_test.cc.o.d"
  "CMakeFiles/accel_test.dir/accel/query_compiler_test.cc.o"
  "CMakeFiles/accel_test.dir/accel/query_compiler_test.cc.o.d"
  "CMakeFiles/accel_test.dir/accel/tokenizer_test.cc.o"
  "CMakeFiles/accel_test.dir/accel/tokenizer_test.cc.o.d"
  "accel_test"
  "accel_test.pdb"
  "accel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
