# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/accel_test[1]_include.cmake")
include("/root/repo/build/tests/templates_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/loggen_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
