file(REMOVE_RECURSE
  "CMakeFiles/persist_reopen.dir/persist_reopen.cpp.o"
  "CMakeFiles/persist_reopen.dir/persist_reopen.cpp.o.d"
  "persist_reopen"
  "persist_reopen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_reopen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
