# Empty compiler generated dependencies file for persist_reopen.
# This may be replaced when dependencies are built.
