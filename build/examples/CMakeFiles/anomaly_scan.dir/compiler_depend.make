# Empty compiler generated dependencies file for anomaly_scan.
# This may be replaced when dependencies are built.
