file(REMOVE_RECURSE
  "CMakeFiles/anomaly_scan.dir/anomaly_scan.cpp.o"
  "CMakeFiles/anomaly_scan.dir/anomaly_scan.cpp.o.d"
  "anomaly_scan"
  "anomaly_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
