# Empty dependencies file for mithril_cli.
# This may be replaced when dependencies are built.
