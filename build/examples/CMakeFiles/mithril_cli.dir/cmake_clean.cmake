file(REMOVE_RECURSE
  "CMakeFiles/mithril_cli.dir/mithril_cli.cpp.o"
  "CMakeFiles/mithril_cli.dir/mithril_cli.cpp.o.d"
  "mithril_cli"
  "mithril_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
