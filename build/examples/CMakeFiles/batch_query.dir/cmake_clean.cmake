file(REMOVE_RECURSE
  "CMakeFiles/batch_query.dir/batch_query.cpp.o"
  "CMakeFiles/batch_query.dir/batch_query.cpp.o.d"
  "batch_query"
  "batch_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
