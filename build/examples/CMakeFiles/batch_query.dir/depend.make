# Empty dependencies file for batch_query.
# This may be replaced when dependencies are built.
