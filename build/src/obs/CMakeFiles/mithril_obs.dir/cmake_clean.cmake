file(REMOVE_RECURSE
  "CMakeFiles/mithril_obs.dir/json.cc.o"
  "CMakeFiles/mithril_obs.dir/json.cc.o.d"
  "CMakeFiles/mithril_obs.dir/metrics.cc.o"
  "CMakeFiles/mithril_obs.dir/metrics.cc.o.d"
  "CMakeFiles/mithril_obs.dir/report.cc.o"
  "CMakeFiles/mithril_obs.dir/report.cc.o.d"
  "CMakeFiles/mithril_obs.dir/trace.cc.o"
  "CMakeFiles/mithril_obs.dir/trace.cc.o.d"
  "libmithril_obs.a"
  "libmithril_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
