# Empty dependencies file for mithril_obs.
# This may be replaced when dependencies are built.
