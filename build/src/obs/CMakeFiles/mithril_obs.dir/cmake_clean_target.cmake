file(REMOVE_RECURSE
  "libmithril_obs.a"
)
