file(REMOVE_RECURSE
  "libmithril_core.a"
)
