# Empty compiler generated dependencies file for mithril_core.
# This may be replaced when dependencies are built.
