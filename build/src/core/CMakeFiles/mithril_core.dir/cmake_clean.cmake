file(REMOVE_RECURSE
  "CMakeFiles/mithril_core.dir/mithrilog.cc.o"
  "CMakeFiles/mithril_core.dir/mithrilog.cc.o.d"
  "libmithril_core.a"
  "libmithril_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
