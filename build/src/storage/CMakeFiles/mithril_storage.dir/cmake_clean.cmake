file(REMOVE_RECURSE
  "CMakeFiles/mithril_storage.dir/page_store.cc.o"
  "CMakeFiles/mithril_storage.dir/page_store.cc.o.d"
  "CMakeFiles/mithril_storage.dir/ssd_model.cc.o"
  "CMakeFiles/mithril_storage.dir/ssd_model.cc.o.d"
  "libmithril_storage.a"
  "libmithril_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
