# Empty compiler generated dependencies file for mithril_storage.
# This may be replaced when dependencies are built.
