file(REMOVE_RECURSE
  "libmithril_storage.a"
)
