file(REMOVE_RECURSE
  "libmithril_query.a"
)
