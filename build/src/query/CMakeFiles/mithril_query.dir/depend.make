# Empty dependencies file for mithril_query.
# This may be replaced when dependencies are built.
