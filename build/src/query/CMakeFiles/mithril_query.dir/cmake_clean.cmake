file(REMOVE_RECURSE
  "CMakeFiles/mithril_query.dir/matcher.cc.o"
  "CMakeFiles/mithril_query.dir/matcher.cc.o.d"
  "CMakeFiles/mithril_query.dir/parser.cc.o"
  "CMakeFiles/mithril_query.dir/parser.cc.o.d"
  "CMakeFiles/mithril_query.dir/query.cc.o"
  "CMakeFiles/mithril_query.dir/query.cc.o.d"
  "libmithril_query.a"
  "libmithril_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
