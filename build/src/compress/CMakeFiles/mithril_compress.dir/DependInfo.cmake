
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/compressor.cc" "src/compress/CMakeFiles/mithril_compress.dir/compressor.cc.o" "gcc" "src/compress/CMakeFiles/mithril_compress.dir/compressor.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/mithril_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/mithril_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/lz4like.cc" "src/compress/CMakeFiles/mithril_compress.dir/lz4like.cc.o" "gcc" "src/compress/CMakeFiles/mithril_compress.dir/lz4like.cc.o.d"
  "/root/repo/src/compress/lzah.cc" "src/compress/CMakeFiles/mithril_compress.dir/lzah.cc.o" "gcc" "src/compress/CMakeFiles/mithril_compress.dir/lzah.cc.o.d"
  "/root/repo/src/compress/lzrw1.cc" "src/compress/CMakeFiles/mithril_compress.dir/lzrw1.cc.o" "gcc" "src/compress/CMakeFiles/mithril_compress.dir/lzrw1.cc.o.d"
  "/root/repo/src/compress/minideflate.cc" "src/compress/CMakeFiles/mithril_compress.dir/minideflate.cc.o" "gcc" "src/compress/CMakeFiles/mithril_compress.dir/minideflate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithril_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mithril_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mithril_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
