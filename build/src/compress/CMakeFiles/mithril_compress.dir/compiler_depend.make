# Empty compiler generated dependencies file for mithril_compress.
# This may be replaced when dependencies are built.
