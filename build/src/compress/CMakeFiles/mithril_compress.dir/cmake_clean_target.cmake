file(REMOVE_RECURSE
  "libmithril_compress.a"
)
