file(REMOVE_RECURSE
  "CMakeFiles/mithril_compress.dir/compressor.cc.o"
  "CMakeFiles/mithril_compress.dir/compressor.cc.o.d"
  "CMakeFiles/mithril_compress.dir/huffman.cc.o"
  "CMakeFiles/mithril_compress.dir/huffman.cc.o.d"
  "CMakeFiles/mithril_compress.dir/lz4like.cc.o"
  "CMakeFiles/mithril_compress.dir/lz4like.cc.o.d"
  "CMakeFiles/mithril_compress.dir/lzah.cc.o"
  "CMakeFiles/mithril_compress.dir/lzah.cc.o.d"
  "CMakeFiles/mithril_compress.dir/lzrw1.cc.o"
  "CMakeFiles/mithril_compress.dir/lzrw1.cc.o.d"
  "CMakeFiles/mithril_compress.dir/minideflate.cc.o"
  "CMakeFiles/mithril_compress.dir/minideflate.cc.o.d"
  "libmithril_compress.a"
  "libmithril_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
