file(REMOVE_RECURSE
  "CMakeFiles/mithril_index.dir/inverted_index.cc.o"
  "CMakeFiles/mithril_index.dir/inverted_index.cc.o.d"
  "libmithril_index.a"
  "libmithril_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
