# Empty compiler generated dependencies file for mithril_index.
# This may be replaced when dependencies are built.
