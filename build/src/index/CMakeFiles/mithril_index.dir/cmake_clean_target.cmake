file(REMOVE_RECURSE
  "libmithril_index.a"
)
