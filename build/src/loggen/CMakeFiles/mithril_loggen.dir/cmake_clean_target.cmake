file(REMOVE_RECURSE
  "libmithril_loggen.a"
)
