file(REMOVE_RECURSE
  "CMakeFiles/mithril_loggen.dir/datasets.cc.o"
  "CMakeFiles/mithril_loggen.dir/datasets.cc.o.d"
  "CMakeFiles/mithril_loggen.dir/log_generator.cc.o"
  "CMakeFiles/mithril_loggen.dir/log_generator.cc.o.d"
  "libmithril_loggen.a"
  "libmithril_loggen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_loggen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
