# Empty dependencies file for mithril_loggen.
# This may be replaced when dependencies are built.
