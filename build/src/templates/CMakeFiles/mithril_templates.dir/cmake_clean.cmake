file(REMOVE_RECURSE
  "CMakeFiles/mithril_templates.dir/ft_tree.cc.o"
  "CMakeFiles/mithril_templates.dir/ft_tree.cc.o.d"
  "CMakeFiles/mithril_templates.dir/prefix_tree.cc.o"
  "CMakeFiles/mithril_templates.dir/prefix_tree.cc.o.d"
  "CMakeFiles/mithril_templates.dir/template_tagger.cc.o"
  "CMakeFiles/mithril_templates.dir/template_tagger.cc.o.d"
  "libmithril_templates.a"
  "libmithril_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
