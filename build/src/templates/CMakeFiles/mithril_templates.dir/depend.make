# Empty dependencies file for mithril_templates.
# This may be replaced when dependencies are built.
