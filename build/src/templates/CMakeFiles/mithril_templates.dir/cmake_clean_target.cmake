file(REMOVE_RECURSE
  "libmithril_templates.a"
)
