file(REMOVE_RECURSE
  "CMakeFiles/mithril_regex.dir/regex.cc.o"
  "CMakeFiles/mithril_regex.dir/regex.cc.o.d"
  "libmithril_regex.a"
  "libmithril_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
