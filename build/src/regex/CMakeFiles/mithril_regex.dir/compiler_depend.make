# Empty compiler generated dependencies file for mithril_regex.
# This may be replaced when dependencies are built.
