file(REMOVE_RECURSE
  "libmithril_regex.a"
)
