
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cc" "src/accel/CMakeFiles/mithril_accel.dir/accelerator.cc.o" "gcc" "src/accel/CMakeFiles/mithril_accel.dir/accelerator.cc.o.d"
  "/root/repo/src/accel/cuckoo_table.cc" "src/accel/CMakeFiles/mithril_accel.dir/cuckoo_table.cc.o" "gcc" "src/accel/CMakeFiles/mithril_accel.dir/cuckoo_table.cc.o.d"
  "/root/repo/src/accel/filter_pipeline.cc" "src/accel/CMakeFiles/mithril_accel.dir/filter_pipeline.cc.o" "gcc" "src/accel/CMakeFiles/mithril_accel.dir/filter_pipeline.cc.o.d"
  "/root/repo/src/accel/hash_filter.cc" "src/accel/CMakeFiles/mithril_accel.dir/hash_filter.cc.o" "gcc" "src/accel/CMakeFiles/mithril_accel.dir/hash_filter.cc.o.d"
  "/root/repo/src/accel/query_compiler.cc" "src/accel/CMakeFiles/mithril_accel.dir/query_compiler.cc.o" "gcc" "src/accel/CMakeFiles/mithril_accel.dir/query_compiler.cc.o.d"
  "/root/repo/src/accel/tokenizer.cc" "src/accel/CMakeFiles/mithril_accel.dir/tokenizer.cc.o" "gcc" "src/accel/CMakeFiles/mithril_accel.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithril_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mithril_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mithril_query.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mithril_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mithril_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
