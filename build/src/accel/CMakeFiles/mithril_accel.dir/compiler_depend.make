# Empty compiler generated dependencies file for mithril_accel.
# This may be replaced when dependencies are built.
