file(REMOVE_RECURSE
  "CMakeFiles/mithril_accel.dir/accelerator.cc.o"
  "CMakeFiles/mithril_accel.dir/accelerator.cc.o.d"
  "CMakeFiles/mithril_accel.dir/cuckoo_table.cc.o"
  "CMakeFiles/mithril_accel.dir/cuckoo_table.cc.o.d"
  "CMakeFiles/mithril_accel.dir/filter_pipeline.cc.o"
  "CMakeFiles/mithril_accel.dir/filter_pipeline.cc.o.d"
  "CMakeFiles/mithril_accel.dir/hash_filter.cc.o"
  "CMakeFiles/mithril_accel.dir/hash_filter.cc.o.d"
  "CMakeFiles/mithril_accel.dir/query_compiler.cc.o"
  "CMakeFiles/mithril_accel.dir/query_compiler.cc.o.d"
  "CMakeFiles/mithril_accel.dir/tokenizer.cc.o"
  "CMakeFiles/mithril_accel.dir/tokenizer.cc.o.d"
  "libmithril_accel.a"
  "libmithril_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
