file(REMOVE_RECURSE
  "libmithril_accel.a"
)
