file(REMOVE_RECURSE
  "CMakeFiles/mithril_common.dir/hash.cc.o"
  "CMakeFiles/mithril_common.dir/hash.cc.o.d"
  "CMakeFiles/mithril_common.dir/stats.cc.o"
  "CMakeFiles/mithril_common.dir/stats.cc.o.d"
  "CMakeFiles/mithril_common.dir/status.cc.o"
  "CMakeFiles/mithril_common.dir/status.cc.o.d"
  "CMakeFiles/mithril_common.dir/text.cc.o"
  "CMakeFiles/mithril_common.dir/text.cc.o.d"
  "libmithril_common.a"
  "libmithril_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
