# Empty dependencies file for mithril_common.
# This may be replaced when dependencies are built.
