file(REMOVE_RECURSE
  "libmithril_common.a"
)
