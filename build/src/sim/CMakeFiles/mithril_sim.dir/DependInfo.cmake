
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/perf_model.cc" "src/sim/CMakeFiles/mithril_sim.dir/perf_model.cc.o" "gcc" "src/sim/CMakeFiles/mithril_sim.dir/perf_model.cc.o.d"
  "/root/repo/src/sim/power_model.cc" "src/sim/CMakeFiles/mithril_sim.dir/power_model.cc.o" "gcc" "src/sim/CMakeFiles/mithril_sim.dir/power_model.cc.o.d"
  "/root/repo/src/sim/resource_model.cc" "src/sim/CMakeFiles/mithril_sim.dir/resource_model.cc.o" "gcc" "src/sim/CMakeFiles/mithril_sim.dir/resource_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithril_common.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/mithril_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mithril_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mithril_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mithril_query.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/mithril_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
