file(REMOVE_RECURSE
  "CMakeFiles/mithril_sim.dir/perf_model.cc.o"
  "CMakeFiles/mithril_sim.dir/perf_model.cc.o.d"
  "CMakeFiles/mithril_sim.dir/power_model.cc.o"
  "CMakeFiles/mithril_sim.dir/power_model.cc.o.d"
  "CMakeFiles/mithril_sim.dir/resource_model.cc.o"
  "CMakeFiles/mithril_sim.dir/resource_model.cc.o.d"
  "libmithril_sim.a"
  "libmithril_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
