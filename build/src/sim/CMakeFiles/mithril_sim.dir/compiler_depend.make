# Empty compiler generated dependencies file for mithril_sim.
# This may be replaced when dependencies are built.
