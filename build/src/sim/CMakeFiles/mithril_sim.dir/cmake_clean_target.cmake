file(REMOVE_RECURSE
  "libmithril_sim.a"
)
