# Empty dependencies file for mithril_baseline.
# This may be replaced when dependencies are built.
