file(REMOVE_RECURSE
  "CMakeFiles/mithril_baseline.dir/grep_scan.cc.o"
  "CMakeFiles/mithril_baseline.dir/grep_scan.cc.o.d"
  "CMakeFiles/mithril_baseline.dir/scan_db.cc.o"
  "CMakeFiles/mithril_baseline.dir/scan_db.cc.o.d"
  "CMakeFiles/mithril_baseline.dir/splunk_lite.cc.o"
  "CMakeFiles/mithril_baseline.dir/splunk_lite.cc.o.d"
  "libmithril_baseline.a"
  "libmithril_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithril_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
