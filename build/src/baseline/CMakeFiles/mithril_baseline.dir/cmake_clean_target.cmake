file(REMOVE_RECURSE
  "libmithril_baseline.a"
)
